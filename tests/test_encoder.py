"""Unit tests for repro.db.encoder."""

import pytest

from repro.db import ItemEncoder


class TestEncodeDecode:
    def test_first_seen_order(self):
        encoder = ItemEncoder()
        assert encoder.encode_item("b") == 0
        assert encoder.encode_item("a") == 1
        assert encoder.encode_item("b") == 0  # stable on repeat

    def test_constructor_seeding(self):
        encoder = ItemEncoder(["x", "y"])
        assert encoder.id_of("x") == 0
        assert encoder.id_of("y") == 1

    def test_encode_set_roundtrip(self):
        encoder = ItemEncoder()
        ids = encoder.encode(["gene_a", "gene_b", "gene_c"])
        assert encoder.decode(ids) == frozenset(["gene_a", "gene_b", "gene_c"])

    def test_decode_unknown_id(self):
        encoder = ItemEncoder(["only"])
        with pytest.raises(KeyError):
            encoder.decode_item(5)

    def test_id_of_unknown_label(self):
        encoder = ItemEncoder()
        with pytest.raises(KeyError):
            encoder.id_of("never-seen")

    def test_len_contains_labels(self):
        encoder = ItemEncoder(["p", "q"])
        assert len(encoder) == 2
        assert "p" in encoder
        assert "z" not in encoder
        assert encoder.labels == ("p", "q")

    def test_mixed_hashable_labels(self):
        encoder = ItemEncoder()
        a = encoder.encode_item(("tuple", 1))
        b = encoder.encode_item(99)
        assert encoder.decode_item(a) == ("tuple", 1)
        assert encoder.decode_item(b) == 99

    def test_append_only_ids_stable(self):
        encoder = ItemEncoder(["a"])
        before = encoder.id_of("a")
        encoder.encode(["b", "c", "d"])
        assert encoder.id_of("a") == before
