"""Registry completeness: every miner registered, capabilities accurate,
configs round-tripping through to_dict/from_dict (hypothesis over knobs)."""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    Capabilities,
    MINERS,
    Miner,
    MinerConfig,
    create_miner,
    get_miner_spec,
    miner_names,
)
from repro.core import PatternFusionConfig
from repro.core.pattern_fusion import PatternFusionMinerConfig
from repro.db import TransactionDatabase
from repro.mining import closed_patterns, eclat, maximal_patterns

EXPECTED_MINERS = {
    "aclose",
    "apriori",
    "carpenter",
    "closed",
    "eclat",
    "fpgrowth",
    "levelwise",
    "maximal",
    "parallel_pattern_fusion",
    "pattern_fusion",
    "sequence_fusion",
    "stream_fusion",
    "topk",
}


@pytest.fixture(scope="module")
def toy_db():
    rows = [[0, 1, 4], [0, 1], [1, 2], [0, 1, 2], [0, 2, 3], [0, 1, 2, 3]]
    return TransactionDatabase(rows, n_items=5)


def pattern_key(result):
    return sorted((p.sorted_items(), p.tidset) for p in result.patterns)


class TestCompleteness:
    def test_every_public_miner_is_registered(self):
        assert set(miner_names()) == EXPECTED_MINERS

    def test_specs_are_well_formed(self):
        for name in miner_names():
            spec = MINERS[name]
            assert spec.name == name == spec.cls.name
            assert issubclass(spec.cls, Miner)
            assert issubclass(spec.config_type, MinerConfig)
            assert dataclasses.is_dataclass(spec.config_type)
            assert isinstance(spec.capabilities, Capabilities)
            assert spec.summary, f"{name} lacks a summary"
            # Every knob carries a default: Miner() must be constructible.
            assert spec.config_type() is not None

    def test_describe_is_json_ready(self):
        for name in miner_names():
            payload = json.dumps(MINERS[name].describe())
            assert name in payload

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="eclat"):
            get_miner_spec("definitely_not_a_miner")
        with pytest.raises(ValueError, match="unknown miner"):
            create_miner("definitely_not_a_miner")


class TestCapabilitiesAccuracy:
    """The flags must describe real behavior, checked against oracles."""

    MINSUP = 2

    def test_complete_miners_match_eclat(self, toy_db):
        oracle = {p.items for p in eclat(toy_db, self.MINSUP).patterns}
        for name in miner_names():
            spec = MINERS[name]
            if not spec.capabilities.complete:
                continue
            knobs = {"minsup": self.MINSUP}
            if name == "levelwise":
                knobs["max_size"] = toy_db.n_items  # uncapped = complete
            mined = {p.items for p in create_miner(name, **knobs).mine(toy_db).patterns}
            assert mined == oracle, name

    def test_closed_miners_match_closed_set(self, toy_db):
        oracle = {p.items for p in closed_patterns(toy_db, self.MINSUP).patterns}
        for name in miner_names():
            spec = MINERS[name]
            if not spec.capabilities.closed or spec.capabilities.top_k:
                continue
            mined = {
                p.items
                for p in create_miner(name, minsup=self.MINSUP).mine(toy_db).patterns
            }
            assert mined == oracle, name

    def test_topk_returns_closed_subset(self, toy_db):
        oracle = {p.items for p in closed_patterns(toy_db, 1).patterns}
        result = create_miner("topk", k=3).mine(toy_db)
        assert len(result) == 3
        assert {p.items for p in result.patterns} <= oracle

    def test_maximal_miners_match_maximal_set(self, toy_db):
        oracle = {p.items for p in maximal_patterns(toy_db, self.MINSUP).patterns}
        for name in miner_names():
            if not MINERS[name].capabilities.maximal:
                continue
            mined = {
                p.items
                for p in create_miner(name, minsup=self.MINSUP).mine(toy_db).patterns
            }
            assert mined == oracle, name

    def test_streaming_miners_implement_update(self, toy_db):
        for name in miner_names():
            spec = MINERS[name]
            miner = spec.cls()
            if spec.capabilities.streaming:
                assert type(miner).update is not Miner.update, name
                assert type(miner).partial_mine is not Miner.partial_mine, name
            else:
                with pytest.raises(NotImplementedError):
                    miner.update([[0, 1]])

    def test_parallel_miners_expose_jobs_knob(self):
        for name in miner_names():
            spec = MINERS[name]
            if spec.capabilities.parallel:
                assert "jobs" in spec.config_type.knob_names(), name

    def test_exactly_one_sequence_miner(self):
        sequence_miners = [
            name for name in miner_names() if MINERS[name].capabilities.sequences
        ]
        assert sequence_miners == ["sequence_fusion"]

    def test_fusion_configs_cover_every_algorithm_knob(self):
        """The flattened driver configs can never fall behind the core config."""
        core_knobs = {f.name for f in dataclasses.fields(PatternFusionConfig)}
        assert core_knobs <= set(PatternFusionMinerConfig.knob_names())
        for name in ("pattern_fusion", "parallel_pattern_fusion", "stream_fusion",
                     "sequence_fusion"):
            assert core_knobs <= set(MINERS[name].config_type.knob_names()), name


def _knob_strategy(field: dataclasses.Field) -> st.SearchStrategy:
    """A value strategy per knob, driven by the declared type string."""
    type_string = str(field.type)
    if field.name == "minsup":
        return st.one_of(st.integers(1, 30), st.floats(0.05, 1.0))
    if field.name == "policy":
        return st.sampled_from(["auto", "always"])
    if field.name == "tau":
        return st.floats(0.1, 1.0)
    options: list[st.SearchStrategy] = []
    if "None" in type_string:
        options.append(st.none())
    if "bool" in type_string:
        options.append(st.booleans())
    elif "float" in type_string:
        options.append(st.floats(0.1, 60.0))
    elif "int" in type_string:
        options.append(st.integers(1, 100))
    if not options:  # pragma: no cover - no such knob today
        options.append(st.text(max_size=5))
    return st.one_of(options)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
@pytest.mark.parametrize("name", sorted(EXPECTED_MINERS))
def test_config_json_round_trip(name, data):
    """from_dict(json(to_dict(cfg))) == cfg for arbitrary valid knob values."""
    config_type = MINERS[name].config_type
    values = {}
    for field in dataclasses.fields(config_type):
        if data.draw(st.booleans(), label=f"set {field.name}?"):
            values[field.name] = data.draw(
                _knob_strategy(field), label=field.name
            )
    try:
        config = config_type.from_dict(values)
    except ValueError:
        return  # the knobs' own validation rejected the draw — fine
    restored = config_type.from_dict(json.loads(json.dumps(config.to_dict())))
    assert restored == config


class TestConfigErrors:
    def test_unknown_key_names_the_valid_ones(self):
        for name in sorted(EXPECTED_MINERS):
            config_type = MINERS[name].config_type
            with pytest.raises(ValueError) as excinfo:
                config_type.from_dict({"no_such_knob": 1})
            message = str(excinfo.value)
            assert "no_such_knob" in message
            assert config_type.knob_names()[0] in message

    def test_miner_rejects_wrong_config_type(self):
        from repro.mining.eclat import EclatMiner
        from repro.mining.apriori import AprioriConfig

        with pytest.raises(TypeError):
            EclatMiner(AprioriConfig())

    def test_overrides_on_ready_config(self):
        from repro.mining.eclat import EclatConfig, EclatMiner

        miner = EclatMiner(EclatConfig(minsup=5), max_size=2)
        assert miner.config == EclatConfig(minsup=5, max_size=2)
