"""The /debug/* diagnostics endpoints, in both serve modes.

Single-process coverage drives a live :class:`PatternServer` (vars shape,
trace ring, on-demand profile, 404/400 paths, X-Trace-Id echo); the
in-process :class:`WorkerServer` checks the queue-wait histogram and its
access-log field without forking; and one real ``repro serve --workers 2``
subprocess proves the fleet behaviours — merged ``/debug/vars`` and the
SIGUSR1-fanned ``/debug/profile`` whose collapsed stacks name both
workers' serve frames.
"""

import json
import logging
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.datasets import diag_plus
from repro.obs import trace
from repro.serve import PatternApp, PatternServer, WorkerServer
from repro.store import PatternStore, mine_cached

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def request(url, method="GET", headers=None):
    req = urllib.request.Request(url, method=method, headers=headers or {})
    with urllib.request.urlopen(req, timeout=30) as response:
        return response.status, dict(response.headers), response.read().decode()


def get_json(url, method="GET", headers=None):
    status, response_headers, body = request(url, method, headers)
    return status, response_headers, json.loads(body)


def _populate(root) -> PatternStore:
    store = PatternStore(root)
    mine_cached(
        store, "pattern_fusion", diag_plus(),
        minsup=20, k=10, initial_pool_max_size=2, seed=0,
    )
    return store


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    store = _populate(tmp_path_factory.mktemp("debug-store"))
    with PatternServer(store, port=0) as server:
        yield server


@pytest.fixture()
def restored_tracer():
    previous = (trace.TRACER.enabled, list(trace.TRACER.sinks))
    yield trace.TRACER
    trace.TRACER.enabled, trace.TRACER.sinks = previous


class TestDebugVars:
    def test_vars_reports_process_vitals(self, served):
        status, _, doc = get_json(served.url + "/debug/vars")
        assert status == 200
        vars_doc = doc["workers"]["self"]
        assert vars_doc["pid"] == os.getpid()
        assert vars_doc["uptime_seconds"] >= 0
        assert vars_doc["rss_bytes"] > 0
        assert vars_doc["threads"]["count"] >= 1
        assert vars_doc["gc"]["counts"]
        assert "query_cache" in vars_doc and "run_cache" in vars_doc
        assert vars_doc["kernel_backend"] in ("stdlib", "numpy")

    def test_unknown_debug_route_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            request(served.url + "/debug/nope")
        assert excinfo.value.code == 404
        assert "no debug route" in json.loads(excinfo.value.read())["error"]

    def test_wrong_method_on_debug_profile_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            request(served.url + "/debug/profile")  # GET, must be POST
        assert excinfo.value.code == 404


class TestDebugTrace:
    def test_trace_disabled_reports_empty(self, served):
        status, _, doc = get_json(served.url + "/debug/trace")
        assert status == 200
        assert doc["tracing_enabled"] is False

    def test_trace_shows_request_spans_when_enabled(
        self, served, restored_tracer
    ):
        trace.TRACER.configure(enabled=True)
        request(served.url + "/health", headers={"X-Trace-Id": "dbg-t1"})
        status, _, doc = get_json(served.url + "/debug/trace?limit=50")
        assert status == 200
        assert doc["tracing_enabled"] is True
        probe = [
            span for span in doc["spans"] if span["trace_id"] == "dbg-t1"
        ]
        assert probe and probe[0]["name"] == "http_request"

    def test_trace_limit_bounds_output(self, served, restored_tracer):
        trace.TRACER.configure(enabled=True)
        for _ in range(5):
            request(served.url + "/health")
        status, _, doc = get_json(served.url + "/debug/trace?limit=2")
        assert status == 200
        assert doc["count"] == 2 and len(doc["spans"]) == 2

    def test_bad_limit_400(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            request(served.url + "/debug/trace?limit=abc")
        assert excinfo.value.code == 400


class TestDebugProfile:
    def test_on_demand_profile_returns_collapsed_stacks(self, served):
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                request(served.url + "/health")

        load = threading.Thread(target=churn, daemon=True)
        load.start()
        try:
            status, _, doc = get_json(
                served.url + "/debug/profile?seconds=0.5&hz=199", method="POST"
            )
        finally:
            stop.set()
            load.join(timeout=10)
        assert status == 200
        assert doc["workers"] == ["self"]
        assert doc["n_samples"] > 0
        assert doc["hz"] == 199
        # The live server's own frames show up in the collapsed output.
        assert re.search(r"(app|serve|_Handler|socketserver)", doc["collapsed"])

    def test_bad_profile_params_400(self, served):
        for query in ("seconds=abc", "seconds=-1", "hz=0"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                request(
                    served.url + f"/debug/profile?{query}", method="POST"
                )
            assert excinfo.value.code == 400

    def test_profile_seconds_is_capped(self, served):
        from repro.serve.app import MAX_PROFILE_SECONDS

        started = time.monotonic()
        status, _, doc = get_json(
            served.url + "/debug/profile?seconds=0.2&hz=67", method="POST"
        )
        assert status == 200
        assert time.monotonic() - started < MAX_PROFILE_SECONDS
        assert doc["seconds"] == 0.2


class TestTraceIdHeader:
    def test_trace_id_echoed_when_sent(self, served):
        _, headers, _ = request(
            served.url + "/health", headers={"X-Trace-Id": "abc-123"}
        )
        assert headers["X-Trace-Id"] == "abc-123"

    def test_trace_id_generated_when_absent(self, served):
        _, headers, _ = request(served.url + "/health")
        assert headers.get("X-Trace-Id")
        # With no client trace id the request id roots the trace.
        assert headers["X-Trace-Id"] == headers["X-Request-Id"]

    def test_request_spans_carry_the_client_trace_id(
        self, served, restored_tracer
    ):
        sink = trace.RingBufferSink()
        trace.TRACER.configure(enabled=True, sinks=[sink])
        request(served.url + "/runs", headers={"X-Trace-Id": "stitch-1"})
        # The handler emits its span record *after* the response bytes go
        # out, so the client can observe the response before the span lands
        # in the sink — poll briefly instead of asserting immediately.
        deadline = time.monotonic() + 5
        matching: list = []
        while time.monotonic() < deadline and not matching:
            matching = [
                span for span in sink.spans() if span["trace_id"] == "stitch-1"
            ]
            if not matching:
                time.sleep(0.02)
        assert matching
        assert all(span["trace_id"] == "stitch-1" for span in matching)


class TestWorkerServerQueueWait:
    def test_queue_wait_observed_and_logged(self, tmp_path):
        from repro.serve.prefork import _QUEUE_WAIT

        store = _populate(tmp_path / "store")
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        worker = WorkerServer(
            listener, PatternApp(store), queue_depth=8, threads=1,
            worker_id="w0", conn_timeout=10.0,
        )
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        logger = logging.getLogger("repro.serve.access")
        handler = Capture(level=logging.INFO)
        previous_level = logger.level
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        thread = threading.Thread(target=worker.serve_forever, daemon=True)
        thread.start()
        observed_before = _QUEUE_WAIT.count()
        try:
            url = f"http://127.0.0.1:{port}"
            status, _, doc = get_json(url + "/debug/vars")
            assert status == 200
            assert doc["workers"]["w0"]["queue_depth"] >= 0
            assert doc["workers"]["w0"]["queue_capacity"] == 8
        finally:
            logger.removeHandler(handler)
            logger.setLevel(previous_level)
            worker.drain()
            thread.join(timeout=15)
            listener.close()
        assert _QUEUE_WAIT.count() > observed_before
        record = next(r for r in records if r.route == "/debug/vars")
        assert record.queue_wait_ms >= 0


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="prefork serving needs os.fork (POSIX)"
)
class TestPreforkDebug:
    @pytest.fixture(scope="class")
    def fleet(self, tmp_path_factory):
        store = _populate(tmp_path_factory.mktemp("prefork-debug-store"))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(store.root),
                "--workers", "2", "--port", "0",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        banner = proc.stdout.readline()
        match = re.search(r"on (http://[\d.]+:\d+)", banner)
        assert match, f"no server url in banner: {banner!r}"
        yield match.group(1)
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=30)

    def _touch_both_workers(self, url):
        pids = set()
        deadline = time.monotonic() + 15
        while len(pids) < 2 and time.monotonic() < deadline:
            _, _, doc = get_json(url + "/health")
            pids.add(doc["pid"])
        assert len(pids) == 2
        return pids

    def test_debug_vars_merges_both_workers(self, fleet):
        worker_pids = self._touch_both_workers(fleet)
        deadline = time.monotonic() + 15
        workers = {}
        while time.monotonic() < deadline:
            _, _, doc = get_json(fleet + "/debug/vars")
            workers = doc["workers"]
            # Sibling vars docs publish on the post-request flush cadence.
            if {"0", "1"} <= set(workers):
                break
            time.sleep(0.3)
        assert {"0", "1"} <= set(workers)
        assert {workers["0"]["pid"], workers["1"]["pid"]} == worker_pids
        for worker_id in ("0", "1"):
            assert workers[worker_id]["rss_bytes"] > 0
            assert workers[worker_id]["queue_capacity"] >= 1

    def test_debug_profile_fans_out_and_merges(self, fleet):
        self._touch_both_workers(fleet)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                request(fleet + "/runs")

        load = threading.Thread(target=churn, daemon=True)
        load.start()
        try:
            status, _, doc = get_json(
                fleet + "/debug/profile?seconds=1&hz=199", method="POST"
            )
        finally:
            stop.set()
            load.join(timeout=10)
        assert status == 200
        assert set(doc["workers"]) == {"0", "1"}  # the whole fleet merged
        assert doc["n_samples"] > 0
        # Acceptance: the merged collapsed stacks name a serve frame.
        assert re.search(
            r"(prefork|WorkerServer|_Handler|app\.)", doc["collapsed"]
        )

    def test_trace_id_echoes_through_any_worker(self, fleet):
        for index in range(6):
            _, headers, _ = request(
                fleet + "/health", headers={"X-Trace-Id": f"fleet-{index}"}
            )
            assert headers["X-Trace-Id"] == f"fleet-{index}"
