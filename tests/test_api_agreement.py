"""Unified-API ⇔ legacy agreement: ``Miner(config).mine(db)`` and
``repro mine --miner <name>`` reproduce the legacy entry points exactly.

Covers the acceptance matrix: every registered miner runs through both
surfaces; eclat/closed byte-level CLI agreement; pattern_fusion at
jobs ∈ {1, 2}; and one streaming slide against the legacy driver.
"""

import pytest

from repro.api import MINERS, create_miner, miner_names
from repro.cli import main
from repro.core import PatternFusionConfig, pattern_fusion
from repro.datasets import diag, quest_like
from repro.db import TransactionDatabase
from repro.engine import SerialExecutor, parallel_pattern_fusion
from repro.mining import (
    aclose,
    apriori,
    carpenter_closed_patterns,
    closed_patterns,
    eclat,
    fpgrowth,
    maximal_patterns,
    mine_up_to_size,
    top_k_closed,
)
from repro.sequences import SequenceDatabase, sequence_pattern_fusion
from repro.streaming import IncrementalPatternFusion

MINSUP = 2


@pytest.fixture(scope="module")
def toy_db():
    rows = [[0, 1, 4], [0, 1], [1, 2], [0, 1, 2], [0, 2, 3], [0, 1, 2, 3]]
    return TransactionDatabase(rows, n_items=5)


@pytest.fixture(scope="module")
def fusion_db():
    return quest_like(n_transactions=120, n_items=24, n_patterns=8, seed=42)


@pytest.fixture
def dat_file(tmp_path):
    path = tmp_path / "toy.dat"
    rows = ["0 1 4", "0 1", "1 2", "0 1 2", "0 2 3", "0 1 2 3"]
    path.write_text("\n".join(rows) + "\n")
    return path


def pattern_key(result):
    return sorted((p.sorted_items(), p.tidset) for p in result.patterns)


LEGACY_CALLS = {
    "apriori": lambda db: apriori(db, MINSUP),
    "eclat": lambda db: eclat(db, MINSUP),
    "fpgrowth": lambda db: fpgrowth(db, MINSUP),
    "closed": lambda db: closed_patterns(db, MINSUP),
    "aclose": lambda db: aclose(db, MINSUP),
    "carpenter": lambda db: carpenter_closed_patterns(db, MINSUP),
    "maximal": lambda db: maximal_patterns(db, MINSUP),
    "levelwise": lambda db: mine_up_to_size(db, MINSUP, max_size=2),
    "topk": lambda db: top_k_closed(db, 4, min_size=2),
}
LEGACY_KNOBS = {
    "levelwise": {"minsup": MINSUP, "max_size": 2},
    "topk": {"k": 4, "min_size": 2},
}


class TestMinerApiAgreement:
    @pytest.mark.parametrize("name", sorted(LEGACY_CALLS))
    def test_itemset_miners_equal_legacy_functions(self, toy_db, name):
        knobs = LEGACY_KNOBS.get(name, {"minsup": MINSUP})
        via_api = create_miner(name, **knobs).mine(toy_db)
        via_legacy = LEGACY_CALLS[name](toy_db)
        assert pattern_key(via_api) == pattern_key(via_legacy)
        assert via_api.algorithm == via_legacy.algorithm

    def test_pattern_fusion_equals_legacy_serial(self, fusion_db):
        config = PatternFusionConfig(k=8, initial_pool_max_size=2, seed=3)
        legacy = pattern_fusion(fusion_db, 10, config)
        via_api = create_miner(
            "pattern_fusion", minsup=10, k=8, initial_pool_max_size=2, seed=3
        ).mine(fusion_db)
        assert pattern_key(via_api) == pattern_key(legacy)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_parallel_fusion_equals_legacy_at_jobs(self, fusion_db, jobs):
        config = PatternFusionConfig(k=8, initial_pool_max_size=2, seed=3)
        legacy = parallel_pattern_fusion(fusion_db, 10, config, jobs=jobs)
        via_api = create_miner(
            "parallel_pattern_fusion",
            minsup=10, k=8, initial_pool_max_size=2, seed=3, jobs=jobs,
        ).mine(fusion_db)
        assert pattern_key(via_api) == pattern_key(legacy)

    def test_parallel_fusion_identical_across_jobs(self, fusion_db):
        pools = [
            pattern_key(
                create_miner(
                    "parallel_pattern_fusion",
                    minsup=10, k=8, initial_pool_max_size=2, seed=3, jobs=jobs,
                ).mine(fusion_db)
            )
            for jobs in (1, 2)
        ]
        assert pools[0] == pools[1]

    def test_streaming_slide_equals_legacy_driver(self, toy_db):
        config = PatternFusionConfig(k=5, initial_pool_max_size=2, seed=1)
        batch = [sorted(row) for row in toy_db.transactions]
        legacy = IncrementalPatternFusion(
            None, MINSUP, config, executor=SerialExecutor()
        )
        legacy_stats = legacy.slide(batch)
        miner = create_miner(
            "stream_fusion", minsup=MINSUP, k=5, initial_pool_max_size=2, seed=1
        )
        stats = miner.update(batch)
        import dataclasses

        assert dataclasses.replace(stats, seconds=0.0) == dataclasses.replace(
            legacy_stats, seconds=0.0
        )
        assert sorted((p.sorted_items(), p.tidset) for p in miner.driver.patterns) \
            == sorted((p.sorted_items(), p.tidset) for p in legacy.patterns)
        # partial_mine on a second slide also tracks the legacy driver.
        second = [[0, 1, 2], [0, 1, 4]]
        legacy.slide(second)
        result = miner.partial_mine(second)
        assert pattern_key(result) == sorted(
            (p.sorted_items(), p.tidset) for p in legacy.patterns
        )

    def test_stream_mine_is_single_slide_cold_run(self, toy_db):
        miner = create_miner(
            "stream_fusion", minsup=MINSUP, k=5, initial_pool_max_size=2, seed=1
        )
        one_shot = miner.mine(toy_db)
        config = PatternFusionConfig(k=5, initial_pool_max_size=2, seed=1)
        driver = IncrementalPatternFusion(
            None, MINSUP, config, executor=SerialExecutor()
        )
        driver.slide([sorted(row) for row in toy_db.transactions])
        assert pattern_key(one_shot) == sorted(
            (p.sorted_items(), p.tidset) for p in driver.patterns
        )

    def test_sequence_fusion_equals_legacy(self):
        db = SequenceDatabase(
            [(0, 1, 2, 3), (0, 1, 2, 3, 4), (1, 2, 3), (0, 2, 3)], n_items=5
        )
        config = PatternFusionConfig(k=3, initial_pool_max_size=2, seed=0)
        legacy = sequence_pattern_fusion(db, 2, config)
        miner = create_miner(
            "sequence_fusion", minsup=2, k=3, initial_pool_max_size=2, seed=0
        )
        full = miner.mine_sequences(db)
        assert [(p.sequence, p.tidset) for p in full.patterns] == [
            (p.sequence, p.tidset) for p in legacy.patterns
        ]
        projected = miner.mine(db)
        assert {(p.items, p.tidset) for p in projected.patterns} == {
            (frozenset(p.sequence), p.tidset) for p in legacy.patterns
        }


class TestCliAgreement:
    """Every registered miner also runs via ``repro mine --miner <name>``."""

    EXTRA_FLAGS = {
        "pattern_fusion": ["--set", "seed=0", "--set", "k=5",
                           "--set", "initial_pool_max_size=2"],
        "parallel_pattern_fusion": ["--set", "seed=0", "--set", "k=5",
                                    "--set", "initial_pool_max_size=2"],
        "stream_fusion": ["--set", "seed=0", "--set", "k=5",
                          "--set", "initial_pool_max_size=2"],
        "sequence_fusion": ["--set", "seed=0", "--set", "k=5",
                            "--set", "initial_pool_max_size=2"],
        "topk": ["--top-k", "4"],
    }

    @pytest.mark.parametrize("name", sorted(set(MINERS)))
    def test_every_registered_miner_runs_via_cli(self, dat_file, capsys, name):
        argv = ["mine", "--input", str(dat_file), "--minsup", "2",
                "--miner", name, *self.EXTRA_FLAGS.get(name, [])]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "patterns at minsup" in out

    @pytest.mark.parametrize("name", ["eclat", "closed"])
    def test_cli_miner_output_equals_legacy_algorithm_output(
        self, dat_file, capsys, name
    ):
        def pattern_lines(argv):
            assert main(argv) == 0
            return [
                line for line in capsys.readouterr().out.splitlines()
                if line.startswith("  size")
            ]

        base = ["mine", "--input", str(dat_file), "--minsup", "2"]
        via_miner = pattern_lines([*base, "--miner", name])
        via_legacy = pattern_lines([*base, "--algorithm", name])
        assert via_miner and via_miner == via_legacy

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_cli_fusion_matches_api_at_jobs(self, dat_file, capsys, jobs):
        argv = ["mine", "--input", str(dat_file), "--minsup", "2",
                "--miner", "parallel_pattern_fusion",
                "--set", "seed=0", "--set", "k=5",
                "--set", "initial_pool_max_size=2", "--set", f"jobs={jobs}"]
        assert main(argv) == 0
        out_lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("  size")
        ]
        db = TransactionDatabase(
            [[0, 1, 4], [0, 1], [1, 2], [0, 1, 2], [0, 2, 3], [0, 1, 2, 3]],
            n_items=5,
        )
        api_result = create_miner(
            "parallel_pattern_fusion",
            minsup=2, seed=0, k=5, initial_pool_max_size=2, jobs=jobs,
        ).mine(db)
        assert len(out_lines) == min(len(api_result), 20)


def test_miner_names_covers_cli_legacy_algorithms():
    """Every legacy --algorithm value maps into the registry."""
    from repro.cli import _LEGACY_ALGORITHMS, _LEGACY_NAME_ALIASES

    for legacy in _LEGACY_ALGORITHMS:
        assert _LEGACY_NAME_ALIASES.get(legacy, legacy) in miner_names()
