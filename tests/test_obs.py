"""Telemetry layer tests: metrics registry, span tracing, and logging.

Covers the exposure-format contract (Prometheus text 0.0.4), thread-safety
under concurrent writers, histogram ``le``-inclusive bucket edges, span
parenting via contextvars — including spans shipped back from engine
workers and stitched into the driver's trace — and the hard invariant that
tracing never changes mined pools.
"""

from __future__ import annotations

import io
import json
import logging
import threading

import pytest

from repro.core import PatternFusionConfig
from repro.datasets import diag, diag_plus
from repro.engine import parallel_pattern_fusion
from repro.mining.results import Stopwatch
from repro.obs import logs, metrics, trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import TRACER, JsonlSink, RingBufferSink
from repro.streaming import IncrementalPatternFusion, ReplaySource


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def traced():
    """Enable the process tracer into a private ring buffer, then restore."""
    sink = RingBufferSink()
    previous = (TRACER.enabled, list(TRACER.sinks))
    TRACER.configure(enabled=True, sinks=[sink])
    yield sink
    TRACER.configure(enabled=previous[0], sinks=previous[1])


class TestCounter:
    def test_inc_and_value(self, registry):
        requests = registry.counter("requests_total", "Requests", ("route",))
        requests.inc(route="/mine")
        requests.inc(3, route="/mine")
        requests.inc(route="/query")
        assert requests.value(route="/mine") == 4
        assert requests.value(route="/query") == 1
        assert requests.value(route="/never") == 0

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("ticks_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_label_set_must_match_exactly(self, registry):
        counter = registry.counter("hits_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc()
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(kind="a", extra="b")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("fine_name", labelnames=("bad-label",))


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("pool_size")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_track_context_manager(self, registry):
        in_flight = registry.gauge("in_flight")
        with in_flight.track():
            assert in_flight.value() == 1
            with in_flight.track():
                assert in_flight.value() == 2
        assert in_flight.value() == 0


class TestHistogramBuckets:
    def test_edges_are_le_inclusive(self, registry):
        h = registry.histogram("latency", buckets=(0.1, 1.0))
        h.observe(0.1)    # exactly on an edge -> that bucket (le semantics)
        h.observe(0.05)   # below the first edge
        h.observe(0.5)
        h.observe(7.0)    # beyond every edge -> +Inf only
        per_bucket, total, count = h.collect()[()]
        assert per_bucket == [2, 1, 1]  # le=0.1, le=1.0, overflow
        assert count == 4
        assert total == pytest.approx(0.1 + 0.05 + 0.5 + 7.0)
        assert h.count() == 4
        assert h.sum() == pytest.approx(7.65)

    def test_rendered_buckets_are_cumulative(self, registry):
        h = registry.histogram("latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 7.0):
            h.observe(value)
        lines = h.render()
        assert 'latency_bucket{le="0.1"} 1' in lines
        assert 'latency_bucket{le="1"} 2' in lines
        assert 'latency_bucket{le="+Inf"} 3' in lines
        assert "latency_count 3" in lines

    def test_timer_observes_duration(self, registry):
        h = registry.histogram("timed", buckets=(10.0,))
        with h.time():
            pass
        assert h.count() == 1
        assert 0.0 <= h.sum() < 10.0

    def test_bucket_validation(self, registry):
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("empty", buckets=())
        with pytest.raises(ValueError, match="duplicate"):
            registry.histogram("dupes", buckets=(1.0, 1.0))


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("same_total", "help", ("a",))
        second = registry.counter("same_total", "different help", ("a",))
        assert first is second

    def test_kind_mismatch_raises(self, registry):
        registry.counter("clash")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("clash")

    def test_label_mismatch_raises(self, registry):
        registry.counter("labeled_total", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("labeled_total", labelnames=("b",))

    def test_reset_zeroes_but_keeps_registrations(self, registry):
        counter = registry.counter("kept_total")
        counter.inc(5)
        registry.reset()
        assert registry.get("kept_total") is counter
        assert counter.value() == 0

    def test_module_default_registry_has_instrumentation(self):
        # Importing the instrumented modules registered their families.
        import repro  # noqa: F401 - triggers all instrumentation imports

        names = metrics.REGISTRY.names()
        assert "repro_fusion_rounds_total" in names
        assert "repro_http_requests_total" in names
        assert "repro_store_saves_total" in names


class TestPrometheusRendering:
    def test_full_exposition_format(self, registry):
        c = registry.counter("app_requests_total", "Total requests", ("code",))
        c.inc(2, code="200")
        c.inc(code="500")
        text = registry.render()
        assert "# HELP app_requests_total Total requests" in text
        assert "# TYPE app_requests_total counter" in text
        assert 'app_requests_total{code="200"} 2' in text
        assert 'app_requests_total{code="500"} 1' in text
        assert text.endswith("\n")

    def test_label_value_escaping(self, registry):
        c = registry.counter("odd_total", labelnames=("path",))
        c.inc(path='a"b\\c\nd')
        assert 'odd_total{path="a\\"b\\\\c\\nd"} 1' in registry.render()

    def test_families_render_in_name_order(self, registry):
        registry.counter("zzz_total").inc()
        registry.counter("aaa_total").inc()
        text = registry.render()
        assert text.index("aaa_total") < text.index("zzz_total")

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render() == ""


class TestConcurrentWriters:
    def test_counter_increments_are_exact(self, registry):
        counter = registry.counter("hammer_total", labelnames=("worker",))
        threads_n, per_thread = 8, 5000

        def hammer(worker):
            for _ in range(per_thread):
                counter.inc(worker=str(worker % 2))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = counter.value(worker="0") + counter.value(worker="1")
        assert total == threads_n * per_thread

    def test_histogram_observations_are_exact(self, registry):
        h = registry.histogram("hammer_seconds", buckets=(0.5,))
        threads_n, per_thread = 8, 2000

        def hammer():
            for _ in range(per_thread):
                h.observe(0.25)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count() == threads_n * per_thread
        assert h.sum() == pytest.approx(0.25 * threads_n * per_thread)


class TestSpans:
    def test_disabled_tracer_returns_shared_null_span(self):
        assert not TRACER.enabled
        assert trace.span("anything") is trace.span("else")
        with trace.span("noop") as s:
            s.set(key="value")  # must be a silent no-op
        assert trace.current_span_id() is None

    def test_parenting_via_contextvar(self, traced):
        with trace.span("outer") as outer:
            with trace.span("inner"):
                pass
        records = traced.spans()
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner, outer_rec = records
        assert inner["parent_id"] == outer_rec["span_id"]
        assert outer_rec["parent_id"] is None

    def test_attrs_and_error_recording(self, traced):
        with pytest.raises(RuntimeError):
            with trace.span("work", size=3) as s:
                s.set(result=7)
                raise RuntimeError("boom")
        (record,) = traced.spans()
        assert record["attrs"] == {"size": 3, "result": 7, "error": "RuntimeError"}
        assert record["elapsed"] >= 0.0

    def test_capture_isolates_and_restores(self, traced):
        with trace.capture() as sink:
            with trace.span("inside"):
                pass
        assert [r["name"] for r in sink.spans()] == ["inside"]
        assert traced.spans() == []  # nothing leaked to the outer sink
        with trace.span("after"):
            pass
        assert [r["name"] for r in traced.spans()] == ["after"]

    def test_ingest_reparents_batch_roots(self, traced):
        with trace.capture() as sink:
            with trace.span("task"):
                with trace.span("step"):
                    pass
            batch = sink.drain()
        with trace.span("driver"):
            assert TRACER.ingest(batch) == 2
        by_name = {r["name"]: r for r in traced.spans()}
        driver_id = by_name["driver"]["span_id"]
        assert by_name["task"]["parent_id"] == driver_id  # root re-parented
        assert by_name["step"]["parent_id"] == by_name["task"]["span_id"]

    def test_jsonl_sink_round_trips(self, traced, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonlSink(path)
        TRACER.add_sink(sink)
        with trace.span("persisted", n=1):
            pass
        sink.close()
        (record,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert record["name"] == "persisted"
        assert record["attrs"] == {"n": 1}


class TestEngineSpanMerge:
    """Worker spans ship back with results and join the driver's trace."""

    CONFIG = PatternFusionConfig(k=6, initial_pool_max_size=2, seed=1)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_fuse_ball_spans_reach_driver_trace(self, traced, jobs):
        parallel_pattern_fusion(diag(8), 6, self.CONFIG, jobs=jobs)
        records = traced.spans()
        by_id = {r["span_id"]: r for r in records}
        fuse_spans = [r for r in records if r["name"] == "fuse_ball"]
        assert fuse_spans, "no fuse_ball spans captured"
        for record in fuse_spans:
            parent = by_id.get(record["parent_id"])
            assert parent is not None, "worker span not stitched into trace"
            assert parent["name"] == "fusion_round"
        assert any(r["name"] == "pattern_fusion" for r in records)

    def test_serial_and_parallel_traces_have_same_shape(self, traced):
        def shape(jobs):
            traced.drain()
            parallel_pattern_fusion(diag(8), 6, self.CONFIG, jobs=jobs)
            return sorted(
                (r["name"], r["attrs"].get("fused"))
                for r in traced.spans()
                if r["name"] == "fuse_ball"
            )

        assert shape(1) == shape(2)

    def test_tracing_never_changes_the_pool(self):
        def pool_key(result):
            return sorted((p.sorted_items(), p.tidset) for p in result.patterns)

        plain = parallel_pattern_fusion(diag(8), 6, self.CONFIG, jobs=2)
        previous = (TRACER.enabled, list(TRACER.sinks))
        TRACER.configure(enabled=True, sinks=[RingBufferSink()])
        try:
            traced_run = parallel_pattern_fusion(diag(8), 6, self.CONFIG, jobs=2)
        finally:
            TRACER.configure(enabled=previous[0], sinks=previous[1])
        assert pool_key(traced_run) == pool_key(plain)
        assert traced_run.iterations == plain.iterations


class TestStreamDecisionCounters:
    def test_slides_record_decision_and_reason(self):
        decisions = metrics.REGISTRY.get("repro_stream_slide_decisions_total")
        before = dict(decisions.collect())
        db = diag_plus(n=12, extra_rows=8, extra_width=10)
        rows = [sorted(row) for row in db.transactions]
        driver = IncrementalPatternFusion(
            capacity=14, minsup=4,
            config=PatternFusionConfig(k=6, initial_pool_max_size=2, seed=3),
        )
        driver.run(ReplaySource(rows, batch_size=4))

        def delta(decision, reason):
            key = (decision, reason)
            return decisions.collect().get(key, 0) - before.get(key, 0)

        assert delta("rebuild", "cold_start") == 1  # the first slide
        total = sum(
            delta(*key)
            for key in {("rebuild", "cold_start"), ("rebuild", "out_of_band"),
                        ("rebuild", "window_turnover"), ("rebuild", "minsup_drop"),
                        ("refuse", "invalidated"), ("refuse", "policy_always"),
                        ("carry", "validated")}
        )
        assert total == driver.slides


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as watch:
            pass
        assert watch.elapsed >= 0.0

    def test_emits_named_span_when_tracing(self, traced):
        with Stopwatch("mine_phase"):
            pass
        (record,) = traced.spans()
        assert record["name"] == "mine_phase"
        assert record["elapsed"] >= 0.0


class TestLogging:
    def teardown_method(self):
        logs.setup_logging("warning")  # restore a quiet default

    def test_json_mode_emits_parseable_lines_with_extras(self):
        stream = io.StringIO()
        logs.setup_logging("info", json_mode=True, stream=stream)
        logs.get_logger("serve.access").info(
            "GET /mine -> 200", extra={"route": "/mine", "status": 200}
        )
        (line,) = stream.getvalue().splitlines()
        record = json.loads(line)
        assert record["msg"] == "GET /mine -> 200"
        assert record["logger"] == "repro.serve.access"
        assert record["level"] == "info"
        assert record["route"] == "/mine"
        assert record["status"] == 200

    def test_text_mode_appends_extras(self):
        stream = io.StringIO()
        logs.setup_logging(logging.INFO, json_mode=False, stream=stream)
        logs.get_logger("engine").info("pool ready", extra={"size": 42})
        output = stream.getvalue()
        assert "repro.engine: pool ready" in output
        assert "size=42" in output

    def test_level_filtering(self):
        stream = io.StringIO()
        logs.setup_logging("warning", stream=stream)
        logs.get_logger("quiet").info("dropped")
        logs.get_logger("quiet").warning("kept")
        assert "dropped" not in stream.getvalue()
        assert "kept" in stream.getvalue()
