"""Tests for repro.core.core_pattern against the paper's Figure 3 example.

A reproduction note (also recorded in EXPERIMENTS.md): Figure 3's rows for
α₁=(abe), α₂=(bcf), α₃=(acf) compute the ratios with |D_αi| = 100 — the
count of each transaction type's own duplicates — but under Definition 1
these patterns are also contained in the (abcef) transactions, so their true
supports are 200.  The α₄=(abcef) row *is* consistent with Definition 1
(exactly 26 core patterns; (4, 0.5)-robust), and we verify it verbatim.  For
α₁…α₃ we assert the values implied by Definition 1 and the library's audited
support counting, not the table's simplified numerators.
"""

import pytest

from repro.core.core_pattern import (
    complementary_core_sets,
    core_patterns,
    core_ratio,
    is_core_descendant,
    is_core_pattern,
    robustness,
)
from repro.db import TransactionDatabase
from tests.conftest import A, B, C, E, F

ABE = frozenset([A, B, E])
BCF = frozenset([B, C, F])
ACF = frozenset([A, C, F])
ABCEF = frozenset([A, B, C, E, F])


def all_nonempty_subsets(items):
    from itertools import combinations

    out = set()
    items = sorted(items)
    for size in range(1, len(items) + 1):
        for combo in combinations(items, size):
            out.add(frozenset(combo))
    return out


class TestCoreRatio:
    def test_ab_of_abe(self, figure3_db):
        # D_abe = 200 (the abe rows and the abcef rows); D_ab = 200 as well.
        assert core_ratio(figure3_db, ABE, frozenset([A, B])) == pytest.approx(1.0)

    def test_abe_of_abcef_matches_paper(self, figure3_db):
        # The α₄ row of Figure 3 is Definition-1-consistent: 100/200.
        assert core_ratio(figure3_db, ABCEF, ABE) == pytest.approx(0.5)

    def test_not_subset_rejected(self, figure3_db):
        with pytest.raises(ValueError):
            core_ratio(figure3_db, ABE, frozenset([C]))

    def test_empty_beta_allowed(self, figure3_db):
        # The empty pattern's support set is all 400 transactions.
        assert core_ratio(figure3_db, ABE, frozenset()) == pytest.approx(0.5)


class TestIsCorePattern:
    def test_positive(self, figure3_db):
        assert is_core_pattern(figure3_db, ABE, frozenset([A, B]), tau=0.5)

    def test_negative_at_stricter_tau(self, figure3_db):
        # (a): |D_abe|/|D_a| = 200/300 ≈ 0.67 — core at 0.5, not at 0.7.
        assert is_core_pattern(figure3_db, ABE, frozenset([A]), tau=0.5)
        assert not is_core_pattern(figure3_db, ABE, frozenset([A]), tau=0.7)

    def test_paper_negative_for_abcef(self, figure3_db):
        # (a) is absent from Figure 3's α₄ core list: 100/300 < 0.5.
        assert not is_core_pattern(figure3_db, ABCEF, frozenset([A]), tau=0.5)

    def test_alpha_is_own_core(self, figure3_db):
        assert is_core_pattern(figure3_db, ABE, ABE, tau=1.0)

    def test_non_subset(self, figure3_db):
        assert not is_core_pattern(figure3_db, ABE, frozenset([C]), tau=0.1)

    def test_invalid_tau(self, figure3_db):
        with pytest.raises(ValueError):
            is_core_pattern(figure3_db, ABE, ABE, tau=0.0)


class TestCorePatternsEnumeration:
    def test_figure3_abcef_matches_paper_exactly(self, figure3_db):
        """Figure 3 lists exactly 26 core patterns for (abcef) at τ = 0.5."""
        got = set(core_patterns(figure3_db, ABCEF, tau=0.5))
        expected = {
            frozenset(s)
            for s in (
                [A, B], [A, C], [A, F], [A, E], [B, C], [B, F], [B, E],
                [C, E], [F, E], [E],
                [A, B, C], [A, B, F], [A, B, E], [A, C, E], [A, C, F],
                [A, F, E], [B, C, F], [B, C, E], [B, F, E], [C, F, E],
                [A, B, C, F], [A, B, C, E], [B, C, F, E], [A, C, F, E],
                [A, B, F, E], [A, B, C, E, F],
            )
        }
        assert len(expected) == 26
        assert got == expected

    def test_figure3_abe_definition1(self, figure3_db):
        # Under Definition 1, D_abe = 200 and every non-empty subset has
        # support ≤ 400, so every subset is a 0.5-core (see module note).
        got = set(core_patterns(figure3_db, ABE, tau=0.5))
        assert got == all_nonempty_subsets(ABE)

    def test_figure3_bcf_stricter_tau(self, figure3_db):
        # At τ = 0.7 the Definition-1 core set of (bcf) shrinks to the
        # subsets supported only by the bcf/abcef rows.
        got = set(core_patterns(figure3_db, BCF, tau=0.7))
        assert got == {BCF, frozenset([B, C]), frozenset([B, F])}

    def test_lemma2_union_closure(self, figure3_db):
        """Lemma 2: β ∈ C_α and γ ⊆ α ⇒ β ∪ γ ∈ C_α."""
        members = set(core_patterns(figure3_db, ABCEF, tau=0.5))
        for beta in members:
            for item in ABCEF:
                assert beta | {item} in members


class TestRobustness:
    def test_abcef_matches_paper(self, figure3_db):
        """α₄ = (abcef) is (4, 0.5)-robust — Definition-1-consistent row."""
        assert robustness(figure3_db, ABCEF, tau=0.5) == 4

    def test_abe_definition1(self, figure3_db):
        # Removing all 3 items leaves the empty pattern: 200/400 = 0.5 ≥ τ.
        assert robustness(figure3_db, ABE, tau=0.5) == 3

    def test_colossal_more_robust_than_small(self, figure3_db):
        """The observation driving the paper: larger patterns are more robust
        (strictly here once τ separates the two)."""
        assert robustness(figure3_db, ABCEF, tau=0.6) > robustness(
            figure3_db, BCF, tau=0.6
        )

    def test_lemma3_exponential_core_count(self, figure3_db):
        """Lemma 3: (d, τ)-robust α has |C_α| ≥ 2^d."""
        for alpha in (ABE, BCF, ACF, ABCEF):
            d = robustness(figure3_db, alpha, tau=0.5)
            count = len(core_patterns(figure3_db, alpha, tau=0.5))
            if d == len(alpha):
                count += 1  # the empty pattern qualifies but isn't enumerated
            assert count >= 2**d

    def test_zero_support_rejected(self):
        db = TransactionDatabase([[0], [1]], n_items=2)
        with pytest.raises(ValueError):
            robustness(db, frozenset([0, 1]), tau=0.5)

    def test_tau_one_counts_support_preserving_removals(self, figure3_db):
        # d at τ=1: removals that keep the support set identical; from abe,
        # both (ab)... -> (e) still has D = 200 = D_abe, the empty set has 400.
        assert robustness(figure3_db, ABE, tau=1.0) == 2


class TestCoreDescendant:
    def test_single_hop(self, figure3_db):
        assert is_core_descendant(figure3_db, frozenset([A, B]), ABE, tau=0.5)

    def test_equal_patterns(self, figure3_db):
        assert is_core_descendant(figure3_db, ABE, ABE, tau=0.5)

    def test_non_subset(self, figure3_db):
        assert not is_core_descendant(figure3_db, frozenset([C]), ABE, tau=0.5)

    def test_multi_hop_chain(self, figure3_db):
        # (a) is not a direct 0.5-core of abcef (100/300), but it is a core
        # descendant via (ab): a ∈ C_(ab) (200/300 ≥ 0.5) and (ab) ∈ C_(abcef).
        assert not is_core_pattern(figure3_db, ABCEF, frozenset([A]), tau=0.5)
        assert is_core_descendant(figure3_db, frozenset([A]), ABCEF, tau=0.5)


class TestComplementarySets:
    def test_paper_example(self, figure3_db):
        """{(ab), (ae)} is a complementary core set of (abe)."""
        sets = complementary_core_sets(figure3_db, ABE, tau=0.5, max_set_size=2)
        as_frozensets = {frozenset(s) for s in sets}
        assert frozenset([frozenset([A, B]), frozenset([A, E])]) in as_frozensets

    def test_observation2_two_sets_suffice_for_abcef(self, figure3_db):
        """Observation 2: abcef = (ab) ∪ (cef), two of its 26 core patterns."""
        sets = complementary_core_sets(figure3_db, ABCEF, tau=0.5, max_set_size=2)
        as_frozensets = {frozenset(s) for s in sets}
        assert frozenset([frozenset([A, B]), frozenset([C, E, F])]) in as_frozensets

    def test_every_set_covers_alpha(self, figure3_db):
        for s in complementary_core_sets(figure3_db, ABE, tau=0.5):
            union = frozenset().union(*s)
            assert union == ABE
            assert ABE not in s

    def test_lemma4_lower_bound(self, figure3_db):
        """Lemma 4: (d, τ)-robust α has |Γ_α| ≥ 2^(d-1) − 1."""
        d = robustness(figure3_db, ABCEF, tau=0.5)
        sets = complementary_core_sets(figure3_db, ABCEF, tau=0.5, max_set_size=3)
        assert len(sets) >= 2 ** (d - 1) - 1
