"""Unit tests for repro.mining.results."""

import pytest

from repro.db import TransactionDatabase
from repro.mining.results import (
    MiningResult,
    Pattern,
    make_pattern,
    patterns_equal_as_sets,
)


def pattern(items, tidset):
    return Pattern(items=frozenset(items), tidset=tidset)


class TestPattern:
    def test_support_is_popcount(self):
        assert pattern([1], 0b1011).support == 3

    def test_size(self):
        assert pattern([1, 4, 9], 0b1).size == 3

    def test_relative_support(self):
        assert pattern([0], 0b11).relative_support(4) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            pattern([0], 0b11).relative_support(0)

    def test_equality_ignores_tidset(self):
        assert pattern([1, 2], 0b1) == pattern([1, 2], 0b111)
        assert hash(pattern([1, 2], 0b1)) == hash(pattern([1, 2], 0b111))

    def test_subpattern(self):
        assert pattern([1], 0).is_subpattern_of(pattern([1, 2], 0))
        assert not pattern([3], 0).is_subpattern_of(pattern([1, 2], 0))

    def test_str_sorted(self):
        assert str(pattern([2, 0], 0b101)) == "{0,2}#2"

    def test_make_pattern_computes_tidset(self, tiny_db):
        p = make_pattern(tiny_db, [0, 1])
        assert p.support == tiny_db.support([0, 1])


class TestMiningResult:
    @pytest.fixture
    def result(self):
        return MiningResult(
            algorithm="test",
            minsup=2,
            patterns=[
                pattern([0], 0b111),
                pattern([0, 1], 0b011),
                pattern([2, 3, 4], 0b001),
                pattern([5, 6, 7], 0b011),
            ],
        )

    def test_len_iter(self, result):
        assert len(result) == 4
        assert sum(1 for _ in result) == 4

    def test_itemsets_and_support_map(self, result):
        assert frozenset([0, 1]) in result.itemsets()
        assert result.support_map()[frozenset([0])] == 3

    def test_of_size_at_least(self, result):
        assert len(result.of_size_at_least(3)) == 2
        assert len(result.of_size_at_least(4)) == 0

    def test_size_histogram_descending(self, result):
        assert result.size_histogram() == {3: 2, 2: 1, 1: 1}
        assert list(result.size_histogram()) == [3, 2, 1]

    def test_largest_tiebreak_by_support(self, result):
        top = result.largest(1)[0]
        assert top.items == frozenset([5, 6, 7])  # size 3, support 2 beats 1

    def test_largest_k_exceeds(self, result):
        assert len(result.largest(10)) == 4


class TestHelpers:
    def test_patterns_equal_as_sets(self):
        a = [pattern([1], 0b1), pattern([2], 0b1)]
        b = [pattern([2], 0b11), pattern([1], 0b111)]
        assert patterns_equal_as_sets(a, b)
        assert not patterns_equal_as_sets(a, b[:1])
