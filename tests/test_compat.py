"""Backward-compat shims: every pre-registry call site keeps working.

The unified API wraps the original functions — it must not move, rename, or
re-behave them.  This module pins the legacy import paths, the legacy call
signatures, and the legacy CLI spellings in one place, so an accidental
break fails here with an explicit "compat" label rather than deep inside an
unrelated suite.
"""

import pytest

from repro.cli import main
from repro.db import TransactionDatabase


@pytest.fixture(scope="module")
def db():
    rows = [[0, 1, 4], [0, 1], [1, 2], [0, 1, 2], [0, 2, 3], [0, 1, 2, 3]]
    return TransactionDatabase(rows, n_items=5)


class TestLegacyImports:
    """The historical import locations all still resolve."""

    def test_top_level_package_names(self):
        from repro import (  # noqa: F401
            IncrementalPatternFusion,
            PatternFusion,
            PatternFusionConfig,
            apriori,
            closed_patterns,
            eclat,
            fpgrowth,
            maximal_patterns,
            mine_up_to_size,
            parallel_pattern_fusion,
            pattern_fusion,
            top_k_closed,
        )

    def test_module_level_names(self):
        from repro.core.pattern_fusion import pattern_fusion  # noqa: F401
        from repro.engine.parallel_fusion import parallel_pattern_fusion  # noqa: F401
        from repro.mining.aclose import aclose, frequent_generators  # noqa: F401
        from repro.mining.carpenter import carpenter_closed_patterns  # noqa: F401
        from repro.mining.closed import iter_closed_patterns  # noqa: F401
        from repro.mining.levelwise import mine_up_to_size  # noqa: F401
        from repro.sequences import sequence_pattern_fusion  # noqa: F401
        from repro.streaming import IncrementalPatternFusion  # noqa: F401


class TestLegacyCallSignatures:
    """Positional/keyword spellings used before the registry still work."""

    def test_simple_miners_positional(self, db):
        from repro import apriori, eclat, fpgrowth

        assert {p.items for p in eclat(db, 2).patterns} == {
            p.items for p in apriori(db, 2).patterns
        } == {p.items for p in fpgrowth(db, 2).patterns}

    def test_eclat_max_size_keyword(self, db):
        from repro import eclat

        capped = eclat(db, 2, max_size=2)
        assert max(p.size for p in capped.patterns) <= 2

    def test_closed_and_maximal(self, db):
        from repro import closed_patterns, maximal_patterns, top_k_closed

        closed = closed_patterns(db, 2)
        maximal = maximal_patterns(db, 2)
        top = top_k_closed(db, 3, min_size=1)
        assert {p.items for p in maximal.patterns} <= {
            p.items for p in closed.patterns
        }
        assert len(top) == 3

    def test_pattern_fusion_config_keyword(self, db):
        from repro import PatternFusionConfig, pattern_fusion

        result = pattern_fusion(
            db, 2, PatternFusionConfig(k=5, initial_pool_max_size=2, seed=0)
        )
        assert result.patterns
        assert result.config.seed == 0

    def test_pattern_fusion_initial_pool_keyword(self, db):
        from repro import PatternFusionConfig, mine_up_to_size, pattern_fusion

        pool = mine_up_to_size(db, 2, max_size=2).patterns
        result = pattern_fusion(
            db,
            2,
            PatternFusionConfig(k=5, initial_pool_max_size=2, seed=0),
            initial_pool=pool,
        )
        assert result.initial_pool_size == len(pool)

    def test_parallel_pattern_fusion_jobs_keyword(self, db):
        from repro import PatternFusionConfig, parallel_pattern_fusion

        config = PatternFusionConfig(k=5, initial_pool_max_size=2, seed=0)
        serial = parallel_pattern_fusion(db, 2, config, jobs=1)
        parallel = parallel_pattern_fusion(db, 2, config, jobs=2)
        assert {p.items for p in serial.patterns} == {
            p.items for p in parallel.patterns
        }

    def test_incremental_driver_construction(self, db):
        from repro import IncrementalPatternFusion, PatternFusionConfig

        driver = IncrementalPatternFusion(
            4, 2, PatternFusionConfig(k=5, initial_pool_max_size=2, seed=0)
        )
        stats = driver.slide([sorted(row) for row in db.transactions])
        assert stats.window_size == 4
        assert driver.slides == 1

    def test_sequence_fusion_positional(self):
        from repro import (
            PatternFusionConfig,
            SequenceDatabase,
            sequence_pattern_fusion,
        )

        seq_db = SequenceDatabase([(0, 1, 2), (0, 1, 2, 3), (1, 2, 3)])
        result = sequence_pattern_fusion(
            seq_db, 2, PatternFusionConfig(k=3, initial_pool_max_size=2, seed=0)
        )
        assert result.patterns


class TestLegacyCli:
    """Pre-registry CLI spellings are aliases, not removals."""

    @pytest.fixture
    def dat_file(self, tmp_path):
        path = tmp_path / "toy.dat"
        path.write_text("0 1 4\n0 1\n1 2\n0 1 2\n0 2 3\n")
        return path

    @pytest.mark.parametrize(
        "algorithm",
        ["apriori", "eclat", "fpgrowth", "closed", "maximal", "carpenter"],
    )
    def test_algorithm_flag(self, dat_file, capsys, algorithm):
        assert main(["mine", "--input", str(dat_file), "--minsup", "2",
                     "--algorithm", algorithm]) == 0
        assert algorithm in capsys.readouterr().out

    def test_algorithm_pool_alias(self, dat_file, capsys):
        assert main(["mine", "--input", str(dat_file), "--minsup", "2",
                     "--algorithm", "pool", "--min-size", "2"]) == 0
        assert "levelwise" in capsys.readouterr().out

    def test_algorithm_pool_defaults_to_size_one(self, dat_file, capsys):
        assert main(["mine", "--input", str(dat_file), "--minsup", "2",
                     "--algorithm", "pool"]) == 0
        assert "levelwise(<= 1)" in capsys.readouterr().out

    def test_algorithm_topk_ignores_minsup(self, dat_file, capsys):
        assert main(["mine", "--input", str(dat_file), "--minsup", "1",
                     "--algorithm", "topk", "--top-k", "3"]) == 0
        assert "topk: 3 patterns" in capsys.readouterr().out

    def test_miner_and_algorithm_conflict(self, dat_file, capsys):
        assert main(["mine", "--input", str(dat_file), "--minsup", "2",
                     "--miner", "eclat", "--algorithm", "eclat"]) == 2
        assert "not both" in capsys.readouterr().err
