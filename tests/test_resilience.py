"""Fault injection, retry policy, and supervised chunk dispatch.

Three layers, tested bottom-up: the deterministic :class:`FaultSchedule`
(spec grammar, hit counting, seeded probability, byte corruption), the
:class:`RetryPolicy` backoff math, and :func:`run_supervised` against both
a scripted fake pool (failure-kind unit tests) and the real
:class:`ParallelExecutor` (worker kills, injected raises, warm-up kills,
exhaustion).  The headline property — a kill-per-round fusion run is
bit-identical to serial — is pinned at the bottom, plus the ``repro
chaos`` CLI front door over the same drill.
"""

from concurrent.futures import Future

import pytest

from repro.cli import main
from repro.core.config import PatternFusionConfig
from repro.engine import ParallelExecutor, SerialExecutor, parallel_pattern_fusion
from repro.engine.executor import map_chunks, split_chunks
from repro.resilience import (
    FaultInjected,
    FaultSchedule,
    RetryPolicy,
    fault_points,
    set_fault_schedule,
)
from repro.resilience.supervised import run_supervised


# Worker bodies must be top-level so the process pool can pickle them by
# reference.
def _square_chunk(chunk):
    return [x * x for x in chunk]


def _raise_valueerror_chunk(chunk):
    raise ValueError("real bug, not a fault")


@pytest.fixture
def install_faults():
    """Install a schedule for the test; restore the previous one after."""
    previous = set_fault_schedule(FaultSchedule.parse(""))

    def install(spec: str) -> FaultSchedule:
        sched = FaultSchedule.parse(spec)
        set_fault_schedule(sched)
        return sched

    yield install
    set_fault_schedule(previous)


class TestFaultScheduleParsing:
    def test_defaults(self):
        sched = FaultSchedule.parse("kill@executor.chunk")
        assert len(sched.rules) == 1
        rule = sched.rules[0]
        assert (rule.action, rule.point) == ("kill", "executor.chunk")
        assert (rule.first, rule.every, rule.times) == (1, 1, None)
        assert rule.max_attempt == 1

    def test_options_and_multiple_rules(self):
        sched = FaultSchedule.parse(
            "kill@executor.chunk:first=2,every=3,times=4,exit=7;"
            "delay@store.write:ms=250;"
            "raise@prefork.handler:p=0.5,seed=9,max_attempt=0"
        )
        kill, delay, raise_ = sched.rules
        assert (kill.first, kill.every, kill.times, kill.exit_code) == (2, 3, 4, 7)
        assert delay.ms == 250
        assert (raise_.p, raise_.seed, raise_.max_attempt) == (0.5, 9, 0)

    def test_empty_spec_is_falsy_noop(self):
        sched = FaultSchedule.parse("")
        assert not sched
        assert sched.check("executor.chunk") is None

    @pytest.mark.parametrize("spec", [
        "explode@executor.chunk",          # unknown action
        "kill-executor.chunk",             # missing @
        "kill@executor.chunk:first",       # option without =
        "kill@executor.chunk:volume=11",   # unknown option
        "kill@executor.chunk:first=0",     # first < 1
        "raise@x:p=1.5",                   # p out of range
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultSchedule.parse(spec)


class TestFaultScheduleFiring:
    def test_first_every_times_schedule(self):
        sched = FaultSchedule.parse("raise@p:first=2,every=2,times=2")
        fired = [sched.check("p") is not None for _ in range(8)]
        assert fired == [False, True, False, True, False, False, False, False]

    def test_first_matching_rule_wins(self):
        sched = FaultSchedule.parse("delay@p:times=1;raise@p")
        assert sched.check("p").kind == "delay"
        assert sched.check("p").kind == "raise"

    def test_other_points_unaffected(self):
        sched = FaultSchedule.parse("raise@p:first=1,times=1")
        assert sched.check("q") is None
        assert sched.check("p") is not None

    def test_max_attempt_gates_retries(self):
        # Default max_attempt=1: retries (attempt >= 2) run clean and do
        # not advance the hit counter.
        sched = FaultSchedule.parse("raise@p:first=1,times=2")
        assert sched.check("p", attempt=1) is not None
        assert sched.check("p", attempt=2) is None
        assert sched.check("p", attempt=1) is not None

    def test_max_attempt_zero_lifts_the_cap(self):
        sched = FaultSchedule.parse("raise@p:max_attempt=0")
        assert all(
            sched.check("p", attempt=attempt) is not None
            for attempt in (1, 2, 3, 9)
        )

    def test_probability_rules_are_deterministic(self):
        spec = "raise@p:p=0.4,seed=11"
        a = FaultSchedule.parse(spec)
        b = FaultSchedule.parse(spec)
        hits_a = [a.check("p") is not None for _ in range(64)]
        hits_b = [b.check("p") is not None for _ in range(64)]
        assert hits_a == hits_b
        assert any(hits_a) and not all(hits_a)  # p strictly between 0 and 1

    def test_reset_replays_the_schedule(self):
        sched = FaultSchedule.parse("raise@p:first=3,times=1")
        first = [sched.check("p") is not None for _ in range(4)]
        sched.reset()
        second = [sched.check("p") is not None for _ in range(4)]
        assert first == second == [False, False, True, False]

    def test_corrupting_flips_one_deterministic_byte(self):
        data = bytes(range(64))
        spec = "corrupt@store.read:times=1,seed=5"
        one = FaultSchedule.parse(spec).corrupting("store.read", data)
        two = FaultSchedule.parse(spec).corrupting("store.read", data)
        assert one == two != data
        assert sum(a != b for a, b in zip(one, data)) == 1

    def test_corrupting_passthrough_without_match(self):
        data = b"pristine"
        assert FaultSchedule.parse("").corrupting("store.read", data) == data

    def test_apply_raise(self):
        sched = FaultSchedule.parse("raise@p")
        with pytest.raises(FaultInjected):
            sched.fire("p")

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "delay@p:ms=1")
        sched = FaultSchedule.from_env()
        assert sched.rules[0].action == "delay"
        assert sched.rules[0].ms == 1

    def test_registered_points_documented(self):
        points = fault_points()
        for point in ("executor.chunk", "executor.warmup", "fusion.round",
                      "store.write", "store.read", "checkpoint.save",
                      "prefork.worker_start", "prefork.handler"):
            assert point in points


class TestRetryPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base": -1.0},
        {"backoff_factor": 0.5},
        {"jitter": 1.5},
        {"chunk_deadline": 0.0},
        {"reshard_after": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_first_attempt_never_waits(self):
        assert RetryPolicy().delay(1) == 0.0

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3, jitter=0.0
        )
        assert policy.delay(2) == pytest.approx(0.1)
        assert policy.delay(3) == pytest.approx(0.2)
        assert policy.delay(4) == pytest.approx(0.3)  # capped
        assert policy.delay(9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5, seed=3)
        delays = {policy.delay(2, salt=4) for _ in range(5)}
        assert len(delays) == 1
        (delay,) = delays
        assert 0.1 <= delay <= 0.1 * 1.5
        # Different salts decorrelate, same policy reproduces.
        assert policy.delay(2, salt=5) != delay
        assert RetryPolicy(backoff_base=0.1, jitter=0.5, seed=3).delay(
            2, salt=4
        ) == delay


class _ScriptedPool:
    """A fake pool whose submit() resolves chunks via a scripted callable."""

    def __init__(self, script):
        self.script = script

    def submit(self, invoke, fn, chunk, action):
        future: Future = Future()
        try:
            future.set_result(self.script(fn, chunk, action))
        except BaseException as error:  # noqa: BLE001 - routed into the future
            future.set_exception(error)
        return future


def _supervise(script, chunks, policy=None, faults=None, resets=None):
    pool = _ScriptedPool(script)
    return run_supervised(
        pool_factory=lambda: pool,
        reset_pool=lambda kill=False: resets.append(kill) if resets is not None else None,
        fn=_square_chunk,
        chunks=chunks,
        policy=policy or RetryPolicy(backoff_base=0.0, jitter=0.0),
        faults=faults,
        serial_fn=_square_chunk,
        invoke=lambda fn, chunk, action: fn(chunk),
        sleep=lambda seconds: None,
    )


class TestRunSupervised:
    def test_clean_run_returns_ordered_results(self):
        chunks = split_chunks(range(10), 3)
        out = _supervise(lambda fn, chunk, action: fn(chunk), chunks)
        assert out == [_square_chunk(chunk) for chunk in chunks]

    def test_transient_fault_is_retried_without_recompute(self):
        chunks = [[1, 2], [3, 4], [5, 6]]
        calls: dict[tuple, int] = {}

        def script(fn, chunk, action):
            key = tuple(chunk)
            calls[key] = calls.get(key, 0) + 1
            if key == (3, 4) and calls[key] == 1:
                raise FaultInjected("injected")
            return fn(chunk)

        out = _supervise(script, chunks)
        assert out == [[1, 4], [9, 16], [25, 36]]
        # The healthy chunks ran exactly once: banked, never recomputed.
        assert calls == {(1, 2): 1, (3, 4): 2, (5, 6): 1}

    def test_repeated_failure_reshards_to_halves(self):
        chunks = [[1, 2, 3, 4]]
        seen: list[tuple] = []

        def script(fn, chunk, action):
            seen.append(tuple(chunk))
            if len(chunk) == 4:
                raise FaultInjected("poisoned whole")
            return fn(chunk)

        policy = RetryPolicy(
            backoff_base=0.0, jitter=0.0, reshard_after=1, max_attempts=4
        )
        out = _supervise(script, chunks, policy=policy)
        assert out == [[1, 4, 9, 16]]  # halves concatenated back in order
        assert (1, 2) in seen and (3, 4) in seen

    def test_exhausted_chunk_falls_back_to_serial(self):
        def script(fn, chunk, action):
            raise FaultInjected("always")

        policy = RetryPolicy(
            backoff_base=0.0, jitter=0.0, max_attempts=2, reshard_after=9
        )
        out = _supervise(script, [[2, 3]], policy=policy)
        assert out == [[4, 9]]  # serial_fn completed it in the driver

    def test_deadline_expiry_kills_and_retries(self):
        state = {"hung": False}

        class HangOncePool:
            def submit(self, invoke, fn, chunk, action):
                future: Future = Future()
                if not state["hung"]:
                    state["hung"] = True
                    return future  # never resolves: simulated hang
                future.set_result(fn(chunk))
                return future

        resets: list[bool] = []
        pool = HangOncePool()
        out = run_supervised(
            pool_factory=lambda: pool,
            reset_pool=lambda kill: resets.append(kill),
            fn=_square_chunk,
            chunks=[[5]],
            policy=RetryPolicy(
                backoff_base=0.0, jitter=0.0, chunk_deadline=0.05
            ),
            faults=None,
            serial_fn=_square_chunk,
            invoke=lambda fn, chunk, action: fn(chunk),
            sleep=lambda seconds: None,
        )
        assert out == [[25]]
        assert resets == [True]  # hung pool was hard-terminated

    def test_real_fn_exceptions_propagate_unchanged(self):
        def script(fn, chunk, action):
            raise ValueError("real bug, not a fault")

        with pytest.raises(ValueError, match="real bug"):
            _supervise(script, [[1], [2]])

    def test_driver_consults_faults_and_ships_actions(self):
        faults = FaultSchedule.parse("raise@executor.chunk:first=1,times=1")
        shipped: list = []

        def script(fn, chunk, action):
            shipped.append(action)
            if action is not None and action.kind == "raise":
                raise FaultInjected("applied")
            return fn(chunk)

        out = _supervise(
            script, [[1], [2]], faults=faults,
        )
        assert out == [[1], [4]]
        kinds = [action.kind for action in shipped if action is not None]
        assert kinds == ["raise"]  # exactly one dispatch drew the fault


def _pool_key(patterns):
    return sorted((p.sorted_items(), p.tidset) for p in patterns)


class TestExecutorRecovery:
    """Real process pools under injected kills/raises: no degrade, same bits."""

    def test_chunk_kills_recover_with_identical_results(self, install_faults):
        items = list(range(40))
        serial = map_chunks(SerialExecutor(), _square_chunk, items)
        install_faults("kill@executor.chunk:first=1,every=2")
        with ParallelExecutor(
            2, retry=RetryPolicy(backoff_base=0.0, jitter=0.0)
        ) as executor:
            out = map_chunks(executor, _square_chunk, items)
            assert out == serial
            assert executor._degraded is False

    def test_injected_raises_recover(self, install_faults):
        items = list(range(12))
        install_faults("raise@executor.chunk:first=1,times=2")
        with ParallelExecutor(
            2, retry=RetryPolicy(backoff_base=0.0, jitter=0.0)
        ) as executor:
            out = map_chunks(executor, _square_chunk, items)
        assert out == [x * x for x in items]

    def test_warmup_kill_recovers(self, install_faults):
        install_faults("kill@executor.warmup:first=1,times=1")
        with ParallelExecutor(
            2, retry=RetryPolicy(backoff_base=0.0, jitter=0.0)
        ) as executor:
            out = map_chunks(executor, _square_chunk, list(range(8)))
            assert out == [x * x for x in range(8)]
            assert executor._degraded is False

    def test_exhaustion_degrades_to_serial_per_chunk_only(self, install_faults):
        # Every dispatch of every attempt dies; the driver finishes the work.
        install_faults("kill@executor.chunk:max_attempt=0")
        with ParallelExecutor(
            2,
            retry=RetryPolicy(
                backoff_base=0.0, jitter=0.0, max_attempts=2, reshard_after=9
            ),
        ) as executor:
            out = map_chunks(executor, _square_chunk, list(range(6)))
            assert out == [x * x for x in range(6)]
            assert executor._degraded is False  # per-chunk fallback, not global

    def test_worker_valueerror_propagates(self, install_faults):
        with ParallelExecutor(2) as executor:
            with pytest.raises(ValueError, match="real bug"):
                map_chunks(
                    executor, _raise_valueerror_chunk, list(range(8))
                )


class TestRecoveryDeterminism:
    """The acceptance property: kill-per-round fusion == serial, bit for bit."""

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_fusion_pool_identical_under_kill_schedule(
        self, quest_db, install_faults, jobs
    ):
        config = PatternFusionConfig(k=10, seed=7)
        reference = parallel_pattern_fusion(quest_db, 6, config, jobs=1)
        install_faults("kill@executor.chunk:first=1,every=2")
        chaotic = parallel_pattern_fusion(quest_db, 6, config, jobs=jobs)
        assert _pool_key(chaotic.patterns) == _pool_key(reference.patterns)
        assert chaotic.iterations == reference.iterations


class TestChaosCli:
    def test_list_points(self, capsys):
        assert main(["chaos", "--list-points"]) == 0
        out = capsys.readouterr().out
        assert "executor.chunk" in out and "prefork.worker_start" in out

    def test_requires_dataset_and_faults(self, capsys):
        assert main(["chaos", "--minsup", "2"]) == 2
        assert main(["chaos", "--dataset", "diag", "--minsup", "2"]) == 2
        assert main(
            ["chaos", "--dataset", "diag", "--minsup", "2", "--faults", "nope"]
        ) == 2

    def test_kill_schedule_passes_against_reference(self, capsys):
        code = main([
            "chaos", "--dataset", "quest", "--minsup", "6", "--k", "10",
            "--seed", "7", "--jobs", "2",
            "--faults", "kill@executor.chunk:first=1,every=2",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "PASS" in out
        assert "repro_faults_injected_total" in out
