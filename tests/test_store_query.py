"""Property tests for the query layer and the inverted item index.

The contract: every composed query equals brute-force predicate filtering
followed by the canonical colossal ranking — the index and the pivot-based
ball query only skip work, never change answers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import tidset_distance
from repro.mining.results import Pattern, colossal_rank_key
from repro.store import InvertedItemIndex, Query, run_query

pools = st.lists(
    st.builds(
        Pattern,
        items=st.frozensets(st.integers(0, 12), min_size=1, max_size=6),
        tidset=st.integers(min_value=1, max_value=(1 << 40) - 1),
    ),
    max_size=25,
)
itemsets = st.sets(st.integers(0, 12), min_size=1, max_size=4)


def brute(pool, query):
    """Reference semantics: plain predicate filtering + ranking + top-k."""
    matches = []
    for p in pool:
        if query.contains_any and not (set(query.contains_any) & p.items):
            continue
        if query.superset_of and not (set(query.superset_of) <= p.items):
            continue
        if p.support < query.min_support or p.size < query.min_size:
            continue
        if query.center is not None:
            anchor = next(
                q for q in pool if q.items == frozenset(query.center)
            )
            if tidset_distance(p.tidset, anchor.tidset) > query.radius:
                continue
        matches.append(p)
    matches.sort(key=colossal_rank_key)
    return matches if query.top is None else matches[: query.top]


class TestInvertedIndex:
    @settings(max_examples=60, deadline=None)
    @given(pools, itemsets)
    def test_containing_all_matches_subset_test(self, pool, items):
        index = InvertedItemIndex(pool)
        assert index.select(index.containing_all(items)) == [
            p for p in pool if items <= p.items
        ]

    @settings(max_examples=60, deadline=None)
    @given(pools, itemsets)
    def test_containing_any_matches_intersection_test(self, pool, items):
        index = InvertedItemIndex(pool)
        assert index.select(index.containing_any(items)) == [
            p for p in pool if items & p.items
        ]

    @settings(max_examples=30, deadline=None)
    @given(pools)
    def test_items_cover_pool(self, pool):
        index = InvertedItemIndex(pool)
        assert set(index.items()) == {i for p in pool for i in p.items}
        assert index.select(index.universe) == pool


class TestQueryOperators:
    @settings(max_examples=80, deadline=None)
    @given(
        pools,
        st.one_of(st.none(), itemsets),
        st.one_of(st.none(), itemsets),
        st.integers(0, 6),
        st.integers(0, 6),
        st.one_of(st.none(), st.integers(1, 5)),
    )
    def test_composed_query_equals_brute_force(
        self, pool, contains, superset, min_support, min_size, top
    ):
        query = Query()
        if contains is not None:
            query = query.contains(*contains)
        if superset is not None:
            query = query.superset(superset)
        query = query.support_at_least(min_support).size_at_least(min_size)
        if top is not None:
            query = query.limit(top)
        assert run_query(pool, query) == brute(pool, query)
        # A shared prebuilt index gives the same answers.
        index = InvertedItemIndex(pool)
        assert run_query(pool, query, index=index) == brute(pool, query)

    @settings(max_examples=60, deadline=None)
    @given(pools, st.floats(0.0, 1.0), st.data())
    def test_distance_ball_equals_brute_force(self, pool, radius, data):
        if not pool:
            return
        anchor = data.draw(st.sampled_from(pool))
        # Duplicate itemsets in the pool make the anchor ambiguous in the
        # brute force too; restrict to the first occurrence's semantics.
        query = Query().within(anchor.items, radius)
        assert run_query(pool, query) == brute(pool, query)

    def test_unknown_center_raises(self):
        pool = [Pattern(items=frozenset({1}), tidset=0b1)]
        with pytest.raises(KeyError, match="anchor"):
            run_query(pool, Query().within([9], 0.5))

    def test_results_ranked_most_colossal_first(self):
        pool = [
            Pattern(items=frozenset({1}), tidset=0b111),
            Pattern(items=frozenset({1, 2, 3}), tidset=0b1),
            Pattern(items=frozenset({4, 5}), tidset=0b11),
        ]
        sizes = [p.size for p in run_query(pool, Query())]
        assert sizes == [3, 2, 1]


class TestQueryWireFormat:
    @settings(max_examples=60, deadline=None)
    @given(
        st.one_of(st.none(), itemsets),
        st.one_of(st.none(), itemsets),
        st.integers(0, 9),
        st.integers(0, 9),
        st.one_of(st.none(), st.integers(1, 9)),
        st.one_of(
            st.none(),
            st.tuples(itemsets, st.floats(0, 1, allow_nan=False)),
        ),
    )
    def test_dict_roundtrip(
        self, contains, superset, min_support, min_size, top, ball
    ):
        query = Query(
            contains_any=tuple(sorted(contains)) if contains else (),
            superset_of=tuple(sorted(superset)) if superset else (),
            min_support=min_support,
            min_size=min_size,
            top=top,
            center=tuple(sorted(ball[0])) if ball else None,
            radius=ball[1] if ball else None,
        )
        assert Query.from_dict(query.to_dict()) == query

    def test_unknown_key_names_valid_ones(self):
        with pytest.raises(ValueError, match="valid keys"):
            Query.from_dict({"min_len": 3})

    def test_validation(self):
        with pytest.raises(ValueError, match="min_support"):
            Query(min_support=-1)
        with pytest.raises(ValueError, match="top"):
            Query(top=0)
        with pytest.raises(ValueError, match="together"):
            Query(center=(1,))
        with pytest.raises(ValueError, match="radius"):
            Query(center=(1,), radius=-0.5)

    def test_builders_accumulate(self):
        query = Query().contains(3).contains(1, 2).superset([5]).superset([4])
        assert query.contains_any == (1, 2, 3)
        assert query.superset_of == (4, 5)
        tightened = query.support_at_least(4).support_at_least(2)
        assert tightened.min_support == 4
