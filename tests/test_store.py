"""Tests for the pattern store: format round trips, persistence, cache.

The headline guarantees under test:

* save → load is *bit-identical* — items, tidsets, pool order, provenance —
  including RNG-sensitive Pattern-Fusion pools whose order carries seed
  information;
* run ids are content hashes: same content → same id (idempotent saves),
  any content change → different id;
* ``mine_cached`` hits exactly when (dataset fingerprint, miner, config)
  match, and a warm hit's pool is bit-identical to the cold mine.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PatternFusionConfig, pattern_fusion
from repro.datasets import diag, diag_plus
from repro.db import TransactionDatabase, dataset_fingerprint
from repro.mining import eclat
from repro.mining.results import MiningResult, Pattern
from repro.store import (
    FORMAT_VERSION,
    PatternStore,
    decode_patterns,
    document_to_result,
    encode_patterns,
    mine_cached,
    read_document,
    result_to_document,
    write_document,
)
from repro.store.cache import LRUCache
from repro.store.format import cache_key, content_run_id


def bits(patterns):
    """The bit-identity projection: (items, tidset) in pool order."""
    return [(p.items, p.tidset) for p in patterns]


patterns_strategy = st.lists(
    st.builds(
        Pattern,
        items=st.frozensets(st.integers(0, 200), min_size=0, max_size=12),
        tidset=st.integers(min_value=0, max_value=(1 << 300) - 1),
    ),
    max_size=30,
)


class TestPayloadFormat:
    @settings(max_examples=60, deadline=None)
    @given(patterns_strategy)
    def test_encode_decode_roundtrip(self, patterns):
        assert bits(decode_patterns(encode_patterns(patterns))) == bits(patterns)

    @settings(max_examples=40, deadline=None)
    @given(patterns_strategy)
    def test_document_roundtrip_through_json(self, patterns):
        result = MiningResult(
            algorithm="x", minsup=3, patterns=patterns, elapsed_seconds=0.25
        )
        document = json.loads(json.dumps(result_to_document(result)))
        back = document_to_result(document)
        assert back.algorithm == "x"
        assert back.minsup == 3
        assert back.elapsed_seconds == 0.25
        assert bits(back.patterns) == bits(patterns)

    def test_bad_payload_line_reports_lineno(self):
        with pytest.raises(ValueError, match="line 1"):
            decode_patterns("no separator here")

    def test_newer_format_refused(self):
        result = MiningResult(algorithm="x", minsup=1, patterns=[])
        document = result_to_document(result)
        document["format"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            document_to_result(document)

    def test_write_read_document(self, tmp_path):
        result = MiningResult(
            algorithm="eclat", minsup=2,
            patterns=[Pattern(items=frozenset({1, 2}), tidset=0b1011)],
        )
        path = tmp_path / "run.json"
        write_document(path, result_to_document(result, miner="eclat"))
        back = document_to_result(read_document(path))
        assert bits(back.patterns) == bits(result.patterns)


class TestContentIds:
    def test_identical_content_identical_id(self):
        args = ("0 1|f\n", "eclat", "eclat", 2, {"minsup": 2}, "abc")
        assert content_run_id(*args) == content_run_id(*args)

    @pytest.mark.parametrize("field, value", [
        (0, "0 1|e\n"), (1, "other"), (2, "other"), (3, 3),
        (4, {"minsup": 3}), (5, "abd"),
    ])
    def test_any_component_changes_id(self, field, value):
        base = ["0 1|f\n", "eclat", "eclat", 2, {"minsup": 2}, "abc"]
        changed = list(base)
        changed[field] = value
        assert content_run_id(*base) != content_run_id(*changed)

    def test_cache_key_requires_full_provenance(self):
        assert cache_key(None, "eclat", {}) is None
        assert cache_key("abc", None, {}) is None
        assert cache_key("abc", "eclat", None) is None
        assert cache_key("abc", "eclat", {}) is not None


class TestFingerprint:
    def test_row_permutation_invariant(self):
        a = TransactionDatabase([[1, 2], [2, 3], [0]], n_items=4)
        b = TransactionDatabase([[0], [2, 3], [1, 2]], n_items=4)
        assert dataset_fingerprint(a) == dataset_fingerprint(b)

    def test_content_sensitive(self):
        a = TransactionDatabase([[1, 2], [2, 3]], n_items=4)
        b = TransactionDatabase([[1, 2], [2, 4]], n_items=5)
        c = TransactionDatabase([[1, 2]], n_items=4)
        assert len({dataset_fingerprint(x) for x in (a, b, c)}) == 3

    def test_universe_sensitive(self):
        a = TransactionDatabase([[1, 2]], n_items=3)
        b = TransactionDatabase([[1, 2]], n_items=9)
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_duplicate_rows_counted(self):
        a = TransactionDatabase([[1, 2], [1, 2]], n_items=3)
        b = TransactionDatabase([[1, 2]], n_items=3)
        assert dataset_fingerprint(a) != dataset_fingerprint(b)


class TestPatternStore:
    def test_save_load_bit_identical(self, tmp_path):
        db = diag(12)
        result = eclat(db, minsup=4)
        store = PatternStore(tmp_path / "store")
        run_id = store.save(result, db=db, miner="eclat",
                            config={"minsup": 4, "max_size": None})
        run = store.load(run_id)
        assert bits(run.patterns) == bits(result.patterns)
        assert run.result.algorithm == result.algorithm
        assert run.result.minsup == result.minsup
        assert run.result.elapsed_seconds == result.elapsed_seconds
        assert run.miner == "eclat"
        assert run.fingerprint == dataset_fingerprint(db)

    def test_fusion_pool_roundtrip_with_rng_order(self, tmp_path):
        """RNG-sensitive pools (order matters) reload exactly, per seed."""
        db = diag_plus()
        store = PatternStore(tmp_path / "store")
        for seed in (0, 1, 7):
            config = PatternFusionConfig(
                k=10, initial_pool_max_size=2, seed=seed
            )
            result = pattern_fusion(db, 20, config).as_mining_result()
            run_id = store.save(result, db=db, miner="pattern_fusion",
                                config={"seed": seed})
            assert bits(store.load(run_id).patterns) == bits(result.patterns)

    def test_save_is_idempotent(self, tmp_path):
        db = diag(10)
        result = eclat(db, minsup=4)
        store = PatternStore(tmp_path / "store")
        first = store.save(result, db=db, miner="eclat", config={"minsup": 4})
        second = store.save(result, db=db, miner="eclat", config={"minsup": 4})
        assert first == second
        assert len(store) == 1

    def test_distinct_configs_distinct_runs(self, tmp_path):
        db = diag(10)
        result = eclat(db, minsup=4)
        store = PatternStore(tmp_path / "store")
        a = store.save(result, db=db, miner="eclat", config={"minsup": 4})
        b = store.save(result, db=db, miner="eclat", config={"minsup": 5})
        assert a != b
        assert set(store.run_ids()) == {a, b}

    def test_unknown_run_raises_with_known_ids(self, tmp_path):
        store = PatternStore(tmp_path / "store")
        with pytest.raises(KeyError, match="no run"):
            store.load("deadbeef")
        with pytest.raises(KeyError, match="no run"):
            store.meta("deadbeef")

    def test_delete(self, tmp_path):
        db = diag(10)
        store = PatternStore(tmp_path / "store")
        run_id = store.save(eclat(db, minsup=4), db=db)
        assert run_id in store
        store.delete(run_id)
        assert run_id not in store
        assert len(store) == 0

    def test_reopen_sees_existing_runs(self, tmp_path):
        db = diag(10)
        result = eclat(db, minsup=4)
        run_id = PatternStore(tmp_path / "store").save(result, db=db)
        reopened = PatternStore(tmp_path / "store")
        assert bits(reopened.load(run_id).patterns) == bits(result.patterns)

    def test_newer_store_format_refused(self, tmp_path):
        root = tmp_path / "store"
        PatternStore(root)
        (root / "store.json").write_text(
            json.dumps({"format": FORMAT_VERSION + 1})
        )
        with pytest.raises(ValueError, match="newer"):
            PatternStore(root)

    def test_streams_append_and_read(self, tmp_path):
        store = PatternStore(tmp_path / "store")
        assert store.stream_names() == []
        store.append_slides("s1", [{"index": 0}, {"index": 1}])
        store.append_slides("s1", [{"index": 2}])
        assert [r["index"] for r in store.read_slides("s1")] == [0, 1, 2]
        assert store.stream_names() == ["s1"]
        with pytest.raises(KeyError, match="no stream"):
            store.read_slides("other")
        with pytest.raises(ValueError, match="stream name"):
            store.append_slides("../escape", [{}])


class TestMineCached:
    def test_cold_then_warm_bit_identical(self, tmp_path):
        db = diag_plus()
        store = PatternStore(tmp_path / "store")
        knobs = dict(minsup=20, k=10, initial_pool_max_size=2, seed=3)
        cold = mine_cached(store, "pattern_fusion", db, **knobs)
        warm = mine_cached(store, "pattern_fusion", db, **knobs)
        assert not cold.hit and warm.hit
        assert warm.run_id == cold.run_id
        assert bits(warm.result.patterns) == bits(cold.result.patterns)
        assert warm.result.algorithm == cold.result.algorithm
        assert warm.result.minsup == cold.result.minsup

    def test_config_change_misses(self, tmp_path):
        db = diag(10)
        store = PatternStore(tmp_path / "store")
        a = mine_cached(store, "eclat", db, minsup=4)
        b = mine_cached(store, "eclat", db, minsup=5)
        assert not a.hit and not b.hit
        assert a.run_id != b.run_id

    def test_dataset_change_misses(self, tmp_path):
        store = PatternStore(tmp_path / "store")
        a = mine_cached(store, "eclat", diag(10), minsup=4)
        b = mine_cached(store, "eclat", diag(11), minsup=4)
        assert not a.hit and not b.hit

    def test_row_permutation_hits(self, tmp_path):
        """Fingerprint sorts rows, so a permuted copy reuses the cache."""
        db = diag(10)
        permuted = TransactionDatabase(
            list(reversed(db.transactions)), n_items=db.n_items
        )
        store = PatternStore(tmp_path / "store")
        cold = mine_cached(store, "eclat", db, minsup=4)
        warm = mine_cached(store, "eclat", permuted, minsup=4)
        assert warm.hit
        # Itemsets agree even though tidsets are window-position relative.
        assert {p.items for p in warm.result.patterns} == {
            p.items for p in cold.result.patterns
        }

    def test_jobs_is_execution_not_identity(self, tmp_path):
        """Worker count never changes the pool, so it never splits the cache."""
        db = diag_plus()
        store = PatternStore(tmp_path / "store")
        knobs = dict(minsup=20, k=10, initial_pool_max_size=2, seed=3)
        cold = mine_cached(store, "parallel_pattern_fusion", db, jobs=1, **knobs)
        warm = mine_cached(store, "parallel_pattern_fusion", db, jobs=2, **knobs)
        assert not cold.hit and warm.hit
        assert warm.run_id == cold.run_id
        assert bits(warm.result.patterns) == bits(cold.result.patterns)
        assert len(store) == 1

    def test_identity_dict_excludes_only_execution_knobs(self):
        from repro.api import get_miner_spec

        config_type = get_miner_spec("parallel_pattern_fusion").config_type
        config = config_type(minsup=2, jobs=4)
        assert config.to_dict()["jobs"] == 4  # round trip keeps it
        assert "jobs" not in config.identity_dict()
        assert config.identity_dict()["minsup"] == 2

    def test_miner_instance_with_knobs_rejected(self, tmp_path):
        from repro.api import create_miner

        store = PatternStore(tmp_path / "store")
        miner = create_miner("eclat", minsup=4)
        with pytest.raises(ValueError, match="miner .name."):
            mine_cached(store, miner, diag(8), minsup=4)

    def test_miner_instance_accepted(self, tmp_path):
        from repro.api import create_miner

        store = PatternStore(tmp_path / "store")
        outcome = mine_cached(store, create_miner("eclat", minsup=4), diag(8))
        assert not outcome.hit
        warm = mine_cached(store, create_miner("eclat", minsup=4), diag(8))
        assert warm.hit


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_stats(self):
        cache = LRUCache(4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("missing")
        assert cache.stats() == {
            "capacity": 4, "size": 1, "hits": 1, "misses": 1,
        }

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("k", "v")
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            LRUCache(-1)
