"""Tests for the sequential-pattern extension (repro.sequences)."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PatternFusionConfig
from repro.sequences import (
    SequenceDatabase,
    SequencePattern,
    common_pattern_of_tidset,
    is_subsequence,
    longest_common_subsequence,
    motif_sequences,
    prefixspan,
    sequence_pattern_fusion,
)

short_sequences = st.lists(st.integers(min_value=0, max_value=4), max_size=8)


class TestSubsequence:
    def test_basic(self):
        assert is_subsequence([1, 3], [1, 2, 3])
        assert not is_subsequence([3, 1], [1, 2, 3])
        assert is_subsequence([], [1])
        assert not is_subsequence([1], [])

    def test_repeats(self):
        assert is_subsequence([2, 2], [2, 1, 2])
        assert not is_subsequence([2, 2, 2], [2, 1, 2])

    @given(short_sequences, short_sequences)
    def test_concatenation_always_contains_parts(self, a, b):
        assert is_subsequence(a, a + b)
        assert is_subsequence(b, a + b)


class TestSequenceDatabase:
    @pytest.fixture
    def db(self):
        return SequenceDatabase(
            [[0, 1, 2, 3], [0, 2, 1, 3], [1, 0, 2], [3, 2, 1, 0]], n_items=4
        )

    def test_support(self, db):
        assert db.support([0, 2]) == 3          # rows 0, 1, 2
        assert db.support([2, 1]) == 2          # rows 1, 3
        assert db.support([0, 1, 2, 3]) == 1
        assert db.support([]) == 4

    def test_tidset_bits(self, db):
        assert db.tidset([0, 2]) == 0b0111

    def test_antimonotone(self, db):
        """Lemma 1's analogue: extending a pattern shrinks its support set."""
        for pattern in ([0], [0, 1], [0, 1, 2]):
            longer = list(pattern) + [3]
            assert db.tidset(longer) & ~db.tidset(pattern) == 0

    def test_frequent_items(self, db):
        assert db.frequent_items(4) == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            SequenceDatabase([[-1]])
        with pytest.raises(ValueError):
            SequenceDatabase([[5]], n_items=2)

    def test_minsup_conversion(self, db):
        assert db.absolute_minsup(0.5) == 2
        assert db.absolute_minsup(3) == 3
        with pytest.raises(ValueError):
            db.absolute_minsup(0)


class TestPrefixSpan:
    @pytest.fixture
    def db(self):
        return SequenceDatabase(
            [[0, 1, 2], [0, 2, 1], [0, 1], [2, 0, 1]], n_items=3
        )

    def test_against_brute_force(self, db):
        minsup = 2
        result = prefixspan(db, minsup)
        # Brute force: every sequence over the alphabet up to length 3.
        alphabet = range(3)
        expected = set()
        for length in (1, 2, 3):
            from itertools import product

            for candidate in product(alphabet, repeat=length):
                if db.support(candidate) >= minsup:
                    expected.add(candidate)
        assert result.sequences() == expected

    def test_supports_correct(self, db):
        for p in prefixspan(db, 2).patterns:
            assert p.tidset == db.tidset(p.sequence)

    def test_max_length(self, db):
        result = prefixspan(db, 2, max_length=1)
        assert {len(p.sequence) for p in result.patterns} == {1}

    def test_max_patterns(self, db):
        assert len(prefixspan(db, 1, max_patterns=4)) == 4

    def test_order_matters(self):
        db = SequenceDatabase([[0, 1]] * 3 + [[1, 0]] * 2, n_items=2)
        result = prefixspan(db, 3)
        assert (0, 1) in result.sequences()
        assert (1, 0) not in result.sequences()

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=3), max_size=6),
            min_size=1, max_size=8,
        ),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_outputs_frequent_and_complete_l1(self, rows, minsup):
        db = SequenceDatabase(rows, n_items=4)
        result = prefixspan(db, minsup)
        for p in result.patterns:
            assert p.support >= minsup
        singles = {p.sequence for p in result.patterns if len(p.sequence) == 1}
        assert singles == {(i,) for i in db.frequent_items(minsup)}


class TestLCS:
    def test_basic(self):
        assert longest_common_subsequence((1, 2, 3, 4), (2, 4, 5)) == (2, 4)

    def test_empty(self):
        assert longest_common_subsequence((), (1, 2)) == ()

    def test_identical(self):
        assert longest_common_subsequence((1, 2, 3), (1, 2, 3)) == (1, 2, 3)

    def test_disjoint(self):
        assert longest_common_subsequence((1, 2), (3, 4)) == ()

    @given(short_sequences, short_sequences)
    @settings(max_examples=80)
    def test_result_embeds_in_both(self, a, b):
        lcs = longest_common_subsequence(tuple(a), tuple(b))
        assert is_subsequence(lcs, a)
        assert is_subsequence(lcs, b)

    @given(short_sequences, short_sequences)
    @settings(max_examples=40)
    def test_symmetric_length(self, a, b):
        forward = longest_common_subsequence(tuple(a), tuple(b))
        backward = longest_common_subsequence(tuple(b), tuple(a))
        assert len(forward) == len(backward)


class TestCommonPattern:
    def test_common_of_supporters(self):
        db = SequenceDatabase(
            [[9, 0, 1, 8, 2], [0, 7, 1, 2], [0, 1, 2, 6]], n_items=10
        )
        pattern = common_pattern_of_tidset(db, 0b111)
        assert pattern == (0, 1, 2)

    def test_empty_tidset(self):
        db = SequenceDatabase([[0]], n_items=1)
        assert common_pattern_of_tidset(db, 0) == ()

    def test_sound_for_any_tidset(self):
        db, _ = motif_sequences(n_sequences=30, motif_lengths=(8,), seed=3)
        for tidset in (0b1, 0b1010101, db.universe):
            pattern = common_pattern_of_tidset(db, tidset)
            if pattern:
                assert db.tidset(pattern) & tidset == tidset


class TestSequenceFusion:
    def test_recovers_planted_motif(self):
        db, motifs = motif_sequences(
            n_sequences=120, motif_lengths=(20,), seed=1
        )
        result = sequence_pattern_fusion(
            db, 30,
            PatternFusionConfig(k=8, initial_pool_max_size=2, seed=0),
        )
        assert result.largest(1)[0].sequence == motifs[0]

    def test_two_motifs_both_found(self):
        db, motifs = motif_sequences(
            n_sequences=150, motif_lengths=(15, 12), motif_support=0.45, seed=2
        )
        result = sequence_pattern_fusion(
            db, 25,
            PatternFusionConfig(k=10, initial_pool_max_size=2, seed=1),
        )
        mined = {p.sequence for p in result.patterns}
        assert motifs[0] in mined
        assert motifs[1] in mined

    def test_all_outputs_frequent(self):
        db, _ = motif_sequences(n_sequences=80, motif_lengths=(10,), seed=4)
        minsup = 20
        result = sequence_pattern_fusion(
            db, minsup, PatternFusionConfig(k=6, seed=2)
        )
        for p in result.patterns:
            assert db.support(p.sequence) >= minsup
            assert p.tidset == db.tidset(p.sequence)

    def test_min_length_non_decreasing(self):
        db, _ = motif_sequences(n_sequences=100, motif_lengths=(16,), seed=5)
        result = sequence_pattern_fusion(
            db, 25, PatternFusionConfig(k=8, seed=3)
        )
        mins = [entry[1] for entry in result.history]
        assert mins == sorted(mins)

    def test_deterministic(self):
        db, _ = motif_sequences(n_sequences=60, motif_lengths=(10,), seed=6)
        config = PatternFusionConfig(k=5, seed=7)
        a = sequence_pattern_fusion(db, 15, config)
        b = sequence_pattern_fusion(db, 15, config)
        assert {p.sequence for p in a.patterns} == {p.sequence for p in b.patterns}


class TestMotifDataset:
    def test_motifs_frequent(self):
        db, motifs = motif_sequences(n_sequences=100, motif_lengths=(12, 9), seed=8)
        for motif in motifs:
            assert db.support(motif) >= 20

    def test_alphabets_disjoint_from_noise(self):
        db, motifs = motif_sequences(noise_items=30, motif_lengths=(5,), seed=9)
        assert all(item >= 30 for item in motifs[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            motif_sequences(motif_support=0.0)


class TestSequencePatternType:
    def test_str_and_props(self):
        p = SequencePattern(sequence=(3, 1, 3), tidset=0b101)
        assert p.support == 2
        assert p.length == 3
        assert str(p) == "<3,1,3>#2"

    def test_subsequence_relation(self):
        small = SequencePattern(sequence=(1, 3), tidset=0)
        big = SequencePattern(sequence=(1, 2, 3), tidset=0)
        assert small.is_subsequence_of(big)
        assert not big.is_subsequence_of(small)
