"""End-to-end integration tests across module boundaries.

Each test walks a full user journey: generate or load data, mine with a
baseline, run Pattern-Fusion, evaluate the result under the Section 5 model.
"""

import random

import pytest

from repro import (
    PatternFusionConfig,
    TransactionDatabase,
    approximation_error,
    closed_patterns,
    pattern_fusion,
)
from repro.datasets import all_like, diag_plus, quest_like, replace_like
from repro.db import parse_fimi, format_fimi
from repro.evaluation import greedy_k_center, recovery_by_size, uniform_sample
from repro.mining import maximal_patterns, mine_up_to_size, top_k_closed


class TestQuestJourney:
    def test_mine_fuse_evaluate(self):
        db = quest_like(n_transactions=150, n_items=30, n_patterns=6, seed=9)
        minsup = 12
        complete = closed_patterns(db, minsup)
        assert len(complete) > 0
        fused = pattern_fusion(
            db, minsup, PatternFusionConfig(k=15, seed=0)
        )
        error = approximation_error(fused.patterns, complete.largest(15))
        # Mined patterns approximate the top of the closed set.
        assert error < 1.0
        # And every fused pattern is a real closed frequent pattern.
        complete_itemsets = complete.itemsets()
        for p in fused.patterns:
            assert p.items in complete_itemsets

    def test_roundtrip_through_fimi(self):
        db = quest_like(n_transactions=80, n_items=20, seed=3)
        db2 = parse_fimi(format_fimi(db), n_items=db.n_items)
        a = closed_patterns(db, 8)
        b = closed_patterns(db2, 8)
        assert a.itemsets() == b.itemsets()


class TestDiagPlusJourney:
    def test_complete_miner_drowns_fusion_does_not(self):
        db = diag_plus(n=26, extra_rows=13, extra_width=30)
        minsup = 13
        # The complete miner must be cut off by its budget...
        with pytest.raises(TimeoutError):
            maximal_patterns(db, minsup, max_seconds=0.2)
        # ...while Pattern-Fusion returns the colossal block.
        result = pattern_fusion(
            db, minsup,
            PatternFusionConfig(k=10, initial_pool_max_size=2, seed=1),
        )
        assert result.largest(1)[0].items == frozenset(range(26, 56))


class TestReplaceJourney:
    def test_colossal_recovery_and_quality(self):
        db, truth = replace_like(n_transactions=2200, seed=5)
        complete = closed_patterns(db, truth.minsup_absolute)
        result = pattern_fusion(
            db,
            truth.minsup_absolute,
            PatternFusionConfig(k=60, initial_pool_max_size=2, seed=2),
        )
        mined = {p.items for p in result.patterns}
        for colossal in truth.colossal:
            assert colossal in mined
        reference = complete.of_size_at_least(40)
        assert approximation_error(result.patterns, reference) < 0.05


class TestAllJourney:
    def test_fig9_style_recovery(self):
        db, truth = all_like(seed=11)
        result = pattern_fusion(
            db, 30,
            PatternFusionConfig(
                k=100, tau=0.95, initial_pool_max_size=2, seed=3
            ),
        )
        complete = closed_patterns(db, 30)
        table = recovery_by_size(result.patterns, complete.patterns)
        # The single largest (size 110) is recovered.
        assert table[110] == (1, 1)
        total_found = sum(hit for _, hit in table.values())
        assert total_found >= 10  # paper recovered 16 of 22

    def test_topk_against_fusion_targets(self):
        db, truth = all_like(seed=11)
        topk = top_k_closed(db, k=5, min_size=80, initial_minsup=30)
        assert all(p.size >= 80 for p in topk.patterns)
        assert {p.items for p in topk.patterns} <= set(truth.colossal)


class TestEvaluationBaselines:
    def test_kcenter_vs_uniform_on_closed_set(self):
        db = quest_like(n_transactions=150, n_items=30, n_patterns=6, seed=13)
        complete = closed_patterns(db, 12).patterns
        if len(complete) < 12:
            pytest.skip("degenerate draw")
        rng = random.Random(0)
        centers = greedy_k_center(complete, 8, rng)
        sampled = uniform_sample(complete, 8, rng)
        err_centers = approximation_error(centers, complete)
        err_sampled = approximation_error(sampled, complete)
        # The informed offline baseline should not be (much) worse.
        assert err_centers <= err_sampled + 0.25


class TestInitialPoolContract:
    def test_pool_is_complete_prefix_of_lattice(self):
        db = quest_like(n_transactions=100, n_items=18, seed=21)
        pool = mine_up_to_size(db, 10, 2)
        # Every frequent 1- and 2-itemset is present — nothing skipped.
        for p in pool.patterns:
            assert db.support(p.items) >= 10
        singles = {p.items for p in pool.patterns if p.size == 1}
        assert singles == {
            frozenset([i]) for i in db.frequent_items(10)
        }
