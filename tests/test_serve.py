"""HTTP smoke tests: a live PatternServer thread answering real requests.

Each test drives the stdlib client against an ephemeral-port server over a
store seeded with one Pattern-Fusion run — covering every route, the query
LRU, warm /mine cache hits, and the error paths (404/400/403).
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.datasets import diag_plus
from repro.serve import PatternServer
from repro.store import PatternStore, mine_cached


def get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def post(url, body):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def error_of(call):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        call()
    return excinfo.value.code, json.loads(excinfo.value.read())["error"]


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    store = PatternStore(tmp_path_factory.mktemp("serve") / "store")
    outcome = mine_cached(
        store, "pattern_fusion", diag_plus(),
        minsup=20, k=10, initial_pool_max_size=2, seed=0,
    )
    store.append_slides("smoke", [{"index": 0}])
    with PatternServer(store, port=0, cache_size=32) as server:
        yield server, store, outcome


class TestRoutes:
    def test_health(self, served):
        server, store, _ = served
        payload = get(server.url + "/health")
        assert payload["status"] == "ok"
        assert payload["runs"] == len(store)
        assert payload["streams"] == ["smoke"]
        assert payload["mine_enabled"] is True

    def test_miners_lists_registry(self, served):
        server, _, _ = served
        names = {m["name"] for m in get(server.url + "/miners")}
        assert {"eclat", "pattern_fusion", "stream_fusion"} <= names

    def test_runs_listing(self, served):
        server, _, outcome = served
        runs = get(server.url + "/runs")
        assert [r["run_id"] for r in runs] == [outcome.run_id]
        assert runs[0]["miner"] == "pattern_fusion"
        assert runs[0]["n_patterns"] == len(outcome.result)

    def test_run_detail_bit_identical(self, served):
        server, _, outcome = served
        detail = get(f"{server.url}/runs/{outcome.run_id}?limit=-1")
        wire = [
            (frozenset(r["items"]), int(r["tidset"], 16))
            for r in detail["patterns"]
        ]
        assert wire == [(p.items, p.tidset) for p in outcome.result.patterns]

    def test_run_detail_limit(self, served):
        server, _, outcome = served
        detail = get(f"{server.url}/runs/{outcome.run_id}?limit=2")
        assert detail["patterns_shown"] == 2
        assert len(detail["patterns"]) == 2

    def test_query_matches_local_evaluation(self, served):
        server, _, outcome = served
        body = {
            "run": outcome.run_id,
            "query": {"min_size": 10, "top": 3},
        }
        payload = post(server.url + "/query", body)
        from repro.store import Query

        local = Query.from_dict(body["query"]).evaluate(outcome.result.patterns)
        assert payload["count"] == len(local)
        assert [frozenset(r["items"]) for r in payload["patterns"]] == [
            p.items for p in local
        ]

    def test_query_cache_hits_on_repeat(self, served):
        server, _, outcome = served
        body = {"run": outcome.run_id, "query": {"min_support": 20, "top": 2}}
        first = post(server.url + "/query", body)
        hits_before = server.query_cache.hits
        second = post(server.url + "/query", body)
        assert second == first
        assert server.query_cache.hits == hits_before + 1

    def test_mine_warm_hit_same_run(self, served):
        server, _, _ = served
        body = {
            "dataset": "diag", "n": 10,
            "miner": "eclat", "config": {"minsup": 5, "max_size": 2},
        }
        cold = post(server.url + "/mine", body)
        warm = post(server.url + "/mine", body)
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["run"] == cold["run"]
        assert warm["count"] == cold["count"]


class TestErrors:
    def test_unknown_route_404(self, served):
        server, _, _ = served
        code, message = error_of(lambda: get(server.url + "/nope"))
        assert code == 404 and "no route" in message

    def test_unknown_run_404(self, served):
        server, _, _ = served
        code, message = error_of(lambda: get(server.url + "/runs/deadbeef"))
        assert code == 404 and "no run" in message

    def test_bad_query_key_400(self, served):
        server, _, outcome = served
        code, message = error_of(lambda: post(
            server.url + "/query",
            {"run": outcome.run_id, "query": {"bogus": 1}},
        ))
        assert code == 400 and "bogus" in message

    def test_unknown_miner_400(self, served):
        server, _, _ = served
        code, message = error_of(lambda: post(
            server.url + "/mine", {"dataset": "diag", "miner": "nope"},
        ))
        assert code == 400 and "unknown miner" in message

    def test_non_integer_limit_400(self, served):
        server, _, _ = served
        code, message = error_of(lambda: post(
            server.url + "/mine",
            {"dataset": "diag", "miner": "eclat",
             "config": {"minsup": 5}, "limit": "10"},
        ))
        assert code == 400 and "limit" in message

    def test_invalid_json_400(self, served):
        server, _, _ = served
        request = urllib.request.Request(
            server.url + "/query", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        code, _ = error_of(lambda: urllib.request.urlopen(request, timeout=10))
        assert code == 400

    def test_deleted_run_under_warm_cache_404_not_500(self, tmp_path):
        """A cached run deleted on disk answers 404 and drops the entry."""
        store = PatternStore(tmp_path / "store")
        outcome = mine_cached(
            store, "pattern_fusion", diag_plus(),
            minsup=20, k=10, initial_pool_max_size=2, seed=0,
        )
        with PatternServer(store, port=0) as server:
            detail_url = f"{server.url}/runs/{outcome.run_id}"
            assert get(detail_url)["run_id"] == outcome.run_id  # cache warmed
            store.delete(outcome.run_id)
            code, message = error_of(lambda: get(detail_url))
            assert code == 404 and "deleted" in message
            # The stale entry is gone, not shadowing future answers.
            assert outcome.run_id not in server.run_cache
            code, _ = error_of(lambda: get(detail_url))
            assert code == 404

    def test_partially_deleted_run_404_not_500(self, tmp_path):
        """meta.json present but both payload files gone: still a 404."""
        store = PatternStore(tmp_path / "store")
        outcome = mine_cached(
            store, "pattern_fusion", diag_plus(),
            minsup=20, k=10, initial_pool_max_size=2, seed=0,
        )
        run_dir = store.root / "runs" / outcome.run_id
        (run_dir / "patterns.txt").unlink()
        (run_dir / "patterns.bin").unlink()
        with PatternServer(store, port=0) as server:
            code, message = error_of(
                lambda: get(f"{server.url}/runs/{outcome.run_id}")
            )
            assert code == 404 and "missing its payload" in message

    def test_mine_disabled_403(self, tmp_path):
        store = PatternStore(tmp_path / "store")
        with PatternServer(store, port=0, allow_mine=False) as server:
            assert get(server.url + "/health")["mine_enabled"] is False
            code, message = error_of(lambda: post(
                server.url + "/mine", {"dataset": "diag", "miner": "eclat"},
            ))
        assert code == 403 and "disabled" in message


def get_raw(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), response.read().decode()


class TestObservability:
    def test_metrics_endpoint_renders_prometheus_text(self, served):
        server, _, _ = served
        get(server.url + "/health")  # guarantee at least one counted request
        status, headers, text = get_raw(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'repro_http_requests_total{method="GET",route="/health",status="200"}' in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert 'repro_http_request_seconds_bucket{route="/health",le="+Inf"}' in text

    def test_fusion_phase_metrics_visible_in_scrape(self, served):
        # The module fixture mined a pattern_fusion run in this process, so
        # the fusion-phase counters must be populated in the scrape.
        server, _, _ = served
        _, _, text = get_raw(server.url + "/metrics")
        assert "repro_fusion_rounds_total" in text
        assert "repro_mine_cached_total" in text
        assert "repro_store_saves_total" in text

    def test_request_counter_increments_per_scrape(self, served):
        server, _, _ = served
        series = 'repro_http_requests_total{method="GET",route="/health",status="200"}'

        def health_count():
            _, _, text = get_raw(server.url + "/metrics")
            line = next(l for l in text.splitlines() if l.startswith(series))
            return int(line.rsplit(" ", 1)[1])

        before = health_count()
        get(server.url + "/health")
        assert health_count() == before + 1

    def test_run_detail_routes_share_one_metric_label(self, served):
        server, _, outcome = served
        get(f"{server.url}/runs/{outcome.run_id}")
        _, _, text = get_raw(server.url + "/metrics")
        # Cardinality bound: per-run paths collapse to the /runs/{id} label.
        assert 'route="/runs/{id}"' in text
        assert outcome.run_id not in text

    def test_request_id_generated_when_absent(self, served):
        server, _, _ = served
        _, headers, _ = get_raw(server.url + "/health")
        assert headers.get("X-Request-Id")

    def test_request_id_echoed_when_sent(self, served):
        server, _, _ = served
        _, headers, _ = get_raw(
            server.url + "/health", headers={"X-Request-Id": "req-abc-123"}
        )
        assert headers["X-Request-Id"] == "req-abc-123"

    def test_access_log_record_is_structured(self, served):
        import logging

        server, _, _ = served
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        logger = logging.getLogger("repro.serve.access")
        handler = Capture(level=logging.INFO)
        previous_level = logger.level
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            get_raw(server.url + "/health", headers={"X-Request-Id": "log-probe"})
        finally:
            logger.removeHandler(handler)
            logger.setLevel(previous_level)
        record = next(r for r in records if r.request_id == "log-probe")
        assert record.method == "GET"
        assert record.route == "/health"
        assert record.status == 200
        assert record.duration_ms >= 0
