"""Tests for incremental Pattern-Fusion: agreement, determinism, telemetry."""

from __future__ import annotations

import pytest

from repro.core import PatternFusion, PatternFusionConfig
from repro.datasets import diag_plus
from repro.engine import make_executor
from repro.streaming import (
    IncrementalPatternFusion,
    ReplaySource,
    SlidingWindowDatabase,
    slide_seed,
)

CONFIG = PatternFusionConfig(k=6, initial_pool_max_size=2, seed=3)


def _stream_rows():
    """Diag+ rows in arrival order: diagonal explosion first, block after."""
    db = diag_plus(n=12, extra_rows=8, extra_width=10)
    return [sorted(row) for row in db.transactions]


def _pool_key(patterns):
    return [(p.sorted_items(), p.tidset) for p in patterns]


class TestColdAgreement:
    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("policy", ["auto", "always"])
    def test_full_replay_matches_cold_run_on_final_window(self, jobs, policy):
        # The subsystem's core guarantee: after a fully-replayed stream the
        # maintained pool is bit-identical to pattern_fusion run once on the
        # final window with the final slide's scheduled seed — whatever the
        # job count and whichever slides were carried along the way.
        with make_executor(jobs) as executor:
            driver = IncrementalPatternFusion(
                capacity=14, minsup=4, config=CONFIG,
                executor=executor, policy=policy,
            )
            report = driver.run(ReplaySource(_stream_rows(), batch_size=4))
        assert report.last.refused  # the block arrival invalidates the pool
        cold_config = CONFIG.reseeded(slide_seed(CONFIG.seed, driver.slides - 1))
        with make_executor(1) as executor:
            cold = PatternFusion(
                driver.window.snapshot(), 4, cold_config, executor=executor
            ).run()
        assert _pool_key(driver.patterns) == _pool_key(cold.patterns)

    def test_maintained_initial_pool_equals_cold_phase1(self):
        from repro.mining.levelwise import mine_up_to_size

        driver = IncrementalPatternFusion(capacity=14, minsup=4, config=CONFIG)
        driver.run(ReplaySource(_stream_rows(), batch_size=4))
        mined = mine_up_to_size(
            driver.window.snapshot(), 4, CONFIG.initial_pool_max_size
        ).patterns
        assert _pool_key(driver.initial_pool) == _pool_key(mined)

    def test_every_slide_cold_equivalent_under_always_policy(self):
        rows = _stream_rows()
        driver = IncrementalPatternFusion(
            capacity=14, minsup=4, config=CONFIG, policy="always"
        )
        for index, batch in enumerate(ReplaySource(rows, batch_size=5)):
            driver.slide(batch)
            cold_config = CONFIG.reseeded(slide_seed(CONFIG.seed, index))
            with make_executor(1) as executor:
                cold = PatternFusion(
                    driver.window.snapshot(), 4, cold_config, executor=executor
                ).run()
            assert _pool_key(driver.patterns) == _pool_key(cold.patterns)


class TestDeterminism:
    def test_jobs_do_not_change_any_slide(self):
        def trajectory(jobs):
            with make_executor(jobs) as executor:
                driver = IncrementalPatternFusion(
                    capacity=14, minsup=4, config=CONFIG, executor=executor
                )
                report = driver.run(ReplaySource(_stream_rows(), batch_size=4))
            return (
                _pool_key(driver.patterns),
                report.largest_trajectory(),
                report.pool_sizes(),
                [s.refused for s in report],
            )

        assert trajectory(1) == trajectory(2)

    def test_slide_seed_schedule_is_stable_and_decorrelated(self):
        assert slide_seed(3, 0) == slide_seed(3, 0)
        assert slide_seed(3, 0) != slide_seed(3, 1)
        assert slide_seed(3, 0) != slide_seed(4, 0)
        assert slide_seed(None, 0) == slide_seed(0, 0)
        with pytest.raises(ValueError):
            slide_seed(3, -1)


class TestIncrementalMechanics:
    def test_stable_stream_carries_the_pool(self):
        # After warm-up, identical batches neither bear nor kill patterns,
        # so the auto policy carries the fused pool without re-fusing.
        row = [0, 1, 2, 3]
        driver = IncrementalPatternFusion(capacity=None, minsup=2, config=CONFIG)
        first = driver.slide([row, row])
        assert first.rebuilt and first.refused
        second = driver.slide([row, row])
        assert not second.rebuilt
        assert not second.refused
        assert second.births == 0 and second.deaths == 0
        # Carried, but with refreshed supports: the pool saw the new rows.
        assert all(p.support == 4 for p in driver.patterns)

    def test_departing_items_record_deaths(self):
        driver = IncrementalPatternFusion(capacity=4, minsup=2, config=CONFIG)
        driver.slide([[0, 1], [0, 1], [0, 1], [0, 1]])
        assert driver.patterns
        stats = driver.slide([[2, 3], [2, 3], [2, 3], [2, 3]])
        # The whole window turned over: every old pattern died.
        assert stats.deaths >= 1
        assert stats.rebuilt  # full turnover takes the cold path
        assert all(p.items <= frozenset([2, 3]) for p in driver.patterns)
        assert driver.largest(1)[0].items == frozenset([2, 3])

    def test_batch_larger_than_capacity_rebuilds(self):
        driver = IncrementalPatternFusion(capacity=3, minsup=2, config=CONFIG)
        driver.slide([[0, 1], [0, 1], [0, 1]])
        stats = driver.slide([[4, 5], [4, 5], [4, 5], [4, 5]])
        assert stats.rebuilt
        assert stats.window_size == 3

    def test_out_of_band_append_rebuilds(self):
        driver = IncrementalPatternFusion(capacity=None, minsup=1, config=CONFIG)
        driver.slide([[0, 1], [0, 1]])
        driver.window.append([2])  # behind the driver's back
        stats = driver.slide([[0, 1]])
        assert stats.rebuilt

    def test_out_of_band_evict_rebuilds_with_correct_supports(self):
        # Evicting behind the driver's back moves window.start but not
        # window.end; carried tidsets would be misaligned by one position if
        # the driver revalidated incrementally.  It must rebuild instead —
        # and end up with the true supports.
        driver = IncrementalPatternFusion(capacity=None, minsup=1, config=CONFIG)
        driver.slide([[0, 1], [0, 1]])
        driver.window.evict()
        stats = driver.slide([[0, 1]])
        assert stats.rebuilt
        snapshot = driver.window.snapshot()
        assert all(p.tidset == snapshot.tidset(p.items) for p in driver.patterns)

    def test_threshold_drop_rebuilds(self):
        # A relative threshold over a shrinking window can qualify patterns
        # with no arrival support; shrinkage only happens out-of-band, which
        # itself forces the rebuild — the threshold guard is defense in depth.
        window = SlidingWindowDatabase()
        driver = IncrementalPatternFusion(
            capacity=None, minsup=0.6, config=CONFIG, window=window
        )
        driver.slide([[0, 1]] * 3 + [[2]] * 2)  # minsup_abs = 3
        for _ in range(3):
            window.evict()  # shrink out-of-band: two rows remain
        stats = driver.slide([])
        assert stats.rebuilt
        assert stats.minsup == 2

    def test_telemetry_shape(self):
        driver = IncrementalPatternFusion(capacity=10, minsup=2, config=CONFIG)
        report = driver.run(ReplaySource(_stream_rows(), batch_size=6))
        assert len(report) == len(_stream_rows()) // 6 + 1
        for stats in report:
            assert stats.window_size <= 10
            assert stats.pool_size >= 0
            assert stats.seconds >= 0.0
            assert stats.largest_size >= 0
        formatted = report.format()
        assert "slide" in formatted and "births" in formatted
        assert "drift report" in report.summary()
        dicts = report.as_dicts()
        assert len(dicts) == len(report)
        assert dicts[0]["index"] == 0

    def test_max_slides_stops_early(self):
        driver = IncrementalPatternFusion(capacity=10, minsup=2, config=CONFIG)
        report = driver.run(
            ReplaySource(_stream_rows(), batch_size=2), max_slides=3
        )
        assert len(report) == 3

    def test_empty_stream_empty_pool(self):
        driver = IncrementalPatternFusion(capacity=5, minsup=2, config=CONFIG)
        stats = driver.slide([])
        assert stats.pool_size == 0
        assert driver.patterns == []

    def test_policy_validated(self):
        with pytest.raises(ValueError):
            IncrementalPatternFusion(capacity=5, minsup=2, policy="sometimes")
