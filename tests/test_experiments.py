"""Tests for the experiment harness: each figure runs end-to-end on a scaled
configuration and exhibits the paper's qualitative shape."""

import pytest

from repro.experiments import line_chart
from repro.experiments.base import ExperimentResult, timed
from repro.experiments.fig6_diag_runtime import Fig6Config
from repro.experiments.fig6_diag_runtime import run as run_fig6
from repro.experiments.fig7_diag_approx import Fig7Config
from repro.experiments.fig7_diag_approx import run as run_fig7
from repro.experiments.fig8_replace_approx import Fig8Config
from repro.experiments.fig8_replace_approx import run as run_fig8
from repro.experiments.fig9_all_comparison import Fig9Config
from repro.experiments.fig9_all_comparison import run as run_fig9
from repro.experiments.fig10_all_runtime import Fig10Config
from repro.experiments.fig10_all_runtime import run as run_fig10
from repro.experiments.registry import REGISTRY, experiment_ids, run_experiment


class TestExperimentResult:
    def test_row_arity_checked(self):
        result = ExperimentResult("x", "t", columns=("a", "b"))
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_format_contains_all_cells(self):
        result = ExperimentResult("x", "title", columns=("a", "b"))
        result.add_row(1, 2.5)
        result.add_row("q", None)
        result.note("a note")
        text = result.format()
        assert "title" in text and "2.5000" in text and "a note" in text
        assert " -" in text  # None renders as '-'


class TestTimed:
    def test_success(self):
        outcome = timed(lambda: 42)
        assert outcome.value == 42
        assert not outcome.timed_out
        assert outcome.seconds is not None

    def test_timeout_translated(self):
        def boom():
            raise TimeoutError("too slow")

        outcome = timed(boom)
        assert outcome.timed_out
        assert outcome.seconds is None


class TestLineChart:
    def test_renders_series(self):
        chart = line_chart(
            {"a": [(1, 1.0), (2, 2.0)], "b": [(1, 10.0), (2, None)]},
            width=20,
            height=6,
        )
        assert "*" in chart and "o" in chart
        assert "a" in chart and "b" in chart

    def test_log_scale(self):
        chart = line_chart({"a": [(1, 1.0), (2, 1000.0)]}, log_y=True)
        assert "log scale" in chart

    def test_empty(self):
        assert line_chart({"a": []}) == "(no data)"


class TestFig6:
    def test_shapes(self):
        config = Fig6Config(
            baseline_sizes=(6, 8, 10),
            fusion_sizes=(6, 10, 16),
            baseline_timeout=20.0,
        )
        result = run_fig6(config)
        rows = {row[0]: row for row in result.rows}
        # Baseline time grows with n; Pattern-Fusion finds size n/2.
        assert rows[10][2] > rows[6][2]
        assert rows[16][4] == 8
        assert rows[16][2] is None  # baseline not run there


class TestFig7:
    def test_error_decreases_with_k(self):
        config = Fig7Config(
            n=20, minsup=10, ks=(10, 40), reference_sample_size=60, seed=1
        )
        result = run_fig7(config)
        errors = [row[2] for row in result.rows]
        assert errors[-1] < errors[0]
        sampling_errors = [row[3] for row in result.rows]
        assert sampling_errors[-1] < sampling_errors[0]


class TestFig8:
    def test_small_replace_instance(self):
        config = Fig8Config(
            n_transactions=2200, ks=(30, 60), size_thresholds=(42, 44), seed=1
        )
        result = run_fig8(config)
        assert result.rows
        by_key = {(row[0], row[1]): row for row in result.rows}
        # The three colossal patterns exist and are all found at size >= 44.
        k_small = config.ks[0]
        assert by_key[(k_small, 44)][2] == 3
        assert by_key[(k_small, 44)][3] == 3
        assert by_key[(k_small, 44)][4] == 0.0
        # Errors are tiny everywhere (paper: < 0.01).
        assert all(row[4] < 0.05 for row in result.rows)


class TestFig9:
    def test_counts_against_complete_set(self):
        result = run_fig9(Fig9Config(k=60, seed=1))
        totals = {row[0]: row[1] for row in result.rows}
        found = {row[0]: row[2] for row in result.rows}
        assert totals[110] == 1
        assert sum(totals.values()) == 22
        assert all(found[size] <= totals[size] for size in totals)
        # The largest pattern is always recovered (paper's headline).
        assert found[110] == 1


class TestFig10:
    def test_single_point_fast(self):
        config = Fig10Config(minsups=(31,), baseline_timeout=30.0, k=40)
        result = run_fig10(config)
        assert len(result.rows) == 1
        minsup, t_max, t_topk, t_pf = result.rows[0]
        assert minsup == 31
        assert t_max is not None and t_topk is not None
        assert t_pf > 0


class TestRegistry:
    def test_all_figures_registered(self):
        assert experiment_ids() == [
            "fig6", "fig7", "fig8", "fig9", "fig10", "stream"
        ]

    def test_specs_have_descriptions(self):
        for spec in REGISTRY.values():
            assert spec.paper_artifact.startswith(("Figure", "Streaming"))
            assert spec.description

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")
