"""Legacy setup shim: lets `pip install -e .` work without the wheel package
(this environment is offline and its setuptools predates PEP 660 editables).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
