"""Fault-tolerance walkthrough: worker kills, checkpoints, and chaos drills.

The story this example tells:

1. install a deterministic fault schedule that murders a worker on every
   other chunk dispatch, mine in parallel anyway, and verify the pool is
   bit-identical to a clean serial run — retries, reshards, and serial
   fallbacks are all visible in the metrics afterwards;
2. crash a fusion run mid-flight (an injected raise at round 3), then
   resume it from its checkpoint and watch it replay the uninterrupted
   trajectory exactly;
3. flip one byte of a stored run and catch it with the store's integrity
   verifier.

Everything is driven by the same machinery the CLI exposes as
``REPRO_FAULTS``, ``repro chaos``, ``repro mine --checkpoint/--resume``,
and ``repro store verify``.

Run with ``PYTHONPATH=src python examples/chaos_mining.py``.
"""

import tempfile
from pathlib import Path

from repro import (
    CheckpointManager,
    FaultInjected,
    FaultSchedule,
    RetryPolicy,
    set_fault_schedule,
)
from repro.core import PatternFusionConfig
from repro.datasets import quest_like
from repro.engine import ParallelExecutor, parallel_pattern_fusion
from repro.obs import metrics


def pool_key(patterns):
    """Order-free exact content of a pool (items + tidsets)."""
    return sorted((p.sorted_items(), p.tidset) for p in patterns)


db = quest_like(n_transactions=120, n_items=24, n_patterns=8, seed=42)
config = PatternFusionConfig(k=10, seed=7)

# ----------------------------------------------------------------------
# 1. Kill a worker on every other chunk dispatch; the answer must not move.
# ----------------------------------------------------------------------
reference = parallel_pattern_fusion(db, 6, config, jobs=1)

set_fault_schedule(FaultSchedule.parse("kill@executor.chunk:first=1,every=2"))
try:
    with ParallelExecutor(2, retry=RetryPolicy(backoff_base=0.01)) as executor:
        chaotic = parallel_pattern_fusion(db, 6, config, executor=executor)
finally:
    set_fault_schedule(None)  # back to whatever $REPRO_FAULTS says

assert pool_key(chaotic.patterns) == pool_key(reference.patterns)
print(f"1. pool survived the kill schedule: {len(chaotic.patterns)} patterns,"
      " bit-identical to the serial reference")
for line in metrics.REGISTRY.render().splitlines():
    if line.startswith(("repro_retries_total", "repro_chunk_failures_total",
                        "repro_faults_injected_total")):
        print(f"   {line}")

# ----------------------------------------------------------------------
# 2. Crash at round 3, resume from the checkpoint, replay the same pool.
# ----------------------------------------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    ckpt = Path(tmp) / "fusion.ckpt"
    set_fault_schedule(FaultSchedule.parse("raise@fusion.round:first=3,times=1"))
    try:
        parallel_pattern_fusion(
            db, 6, config, jobs=1, checkpoint=CheckpointManager(ckpt)
        )
    except FaultInjected:
        print(f"2. run crashed at round 3; checkpoint holds "
              f"{ckpt.stat().st_size} bytes of driver state")
    finally:
        set_fault_schedule(None)

    resumed = parallel_pattern_fusion(
        db, 6, config, jobs=1, checkpoint=CheckpointManager(ckpt)
    )
    assert pool_key(resumed.patterns) == pool_key(reference.patterns)
    assert not ckpt.exists()  # cleared after the successful finish
    print("   resumed run replayed the uninterrupted pool exactly "
          f"({resumed.iterations} rounds total)")

# ----------------------------------------------------------------------
# 3. Corrupt one stored byte; `store verify` refuses to trust the run.
# ----------------------------------------------------------------------
from repro.store import PatternStore  # noqa: E402

with tempfile.TemporaryDirectory() as tmp:
    store = PatternStore(Path(tmp) / "pstore")
    run_id = store.save(
        reference.as_mining_result(), db=db, miner="pattern_fusion",
        config={"k": 10, "seed": 7},
    )
    (ok_report,) = store.verify(run_id)
    print(f"3. stored run {run_id}: checks {ok_report['checks']} -> ok")

    binary = next((store.root / "runs").glob("**/patterns.bin"))
    blob = bytearray(binary.read_bytes())
    blob[30] ^= 0xFF  # one flipped bit pattern in the header
    binary.write_bytes(bytes(blob))
    (bad_report,) = store.verify(run_id)
    assert not bad_report["ok"]
    print(f"   after flipping byte 30: verify reports {bad_report['errors']}")
