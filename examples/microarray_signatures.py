"""Microarray analysis: colossal gene-coexpression signatures on ALL-sim.

The paper's second real dataset is the ALL-AML leukemia microarray: 38
patient samples, 866 expressed genes each.  Frequent patterns here are sets
of genes active together across most samples; the colossal ones are the
clinically interesting coexpression signatures, and the explosive number of
mid-size patterns at low support is what kills complete miners (the paper's
Figure 10).

This example:
1. generates ALL-sim (38 × 866 over a 1,736-gene universe);
2. shows the complete closed answer at support 30 — exactly the 22 colossal
   signatures with the paper's Figure 9 sizes;
3. mines with Pattern-Fusion (K = 100, pool of 1- and 2-gene patterns) and
   prints the Figure 9-style recovery table;
4. demonstrates the low-support explosion that motivates approximation.

Run:
    python examples/microarray_signatures.py
"""

from repro import PatternFusionConfig, pattern_fusion
from repro.datasets import all_like
from repro.db import describe
from repro.evaluation import format_recovery_table, recovery_by_size
from repro.mining import closed_patterns, maximal_patterns


def main() -> None:
    db, truth = all_like()
    print("dataset:", describe(db))

    # --- the complete closed answer at the paper's threshold ---------------
    complete = closed_patterns(db, 30)
    sizes = sorted((p.size for p in complete.patterns), reverse=True)
    print(f"complete closed set at support 30: {len(complete)} signatures")
    print(f"sizes: {sizes}")

    # --- Pattern-Fusion recovery (Figure 9) --------------------------------
    config = PatternFusionConfig(
        k=100, tau=0.97, initial_pool_max_size=2, seed=0
    )
    result = pattern_fusion(db, 30, config)
    print(
        f"\npattern-fusion: initial pool {result.initial_pool_size} "
        f"(paper: 25,760), {result.iterations} iterations, "
        f"{result.elapsed_seconds:.1f}s"
    )
    table = recovery_by_size(result.patterns, complete.patterns)
    print(format_recovery_table(table))
    found = sum(hit for _, hit in table.values())
    print(f"recovered {found} of {len(complete)} signatures "
          f"(the paper reported 16 of 22)")

    # --- why approximation: the low-support explosion ----------------------
    print("\nthe explosion that motivates all of this:")
    for minsup in (31, 27, 23):
        try:
            maximal = maximal_patterns(db, minsup, max_seconds=8.0)
            print(f"  support {minsup}: {len(maximal)} maximal patterns "
                  f"({maximal.elapsed_seconds:.2f}s)")
        except TimeoutError:
            print(f"  support {minsup}: complete mining gave up after 8s")


if __name__ == "__main__":
    main()
