"""Load-testing the pre-forked serving tier, end to end.

The story this example tells:

1. mine a pool and persist it (binary format written alongside v1);
2. launch the production entry point — ``repro serve --workers 2`` — as a
   real subprocess and wait for its banner;
3. fleet concurrent clients against it at increasing concurrency, printing
   a p50/p90/p99 latency table from the shared
   :func:`repro.experiments.bench_io.latency_summary` helper;
4. scrape ``GET /metrics`` to see the per-worker series merged into one
   exposition, then SIGTERM the server and watch it drain cleanly.

Run with ``PYTHONPATH=src python examples/load_test.py``.
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro import PatternStore, mine_cached
from repro.datasets import diag_plus
from repro.experiments.bench_io import latency_summary

# 1. A store with one Pattern-Fusion run. `save` writes both payloads:
#    patterns.txt (v1 text) and patterns.bin (mmap-able binary).
root = Path(tempfile.mkdtemp(prefix="repro-load-test-")) / "runs"
store = PatternStore(root)
outcome = mine_cached(
    store, "pattern_fusion", diag_plus(),
    minsup=20, k=10, initial_pool_max_size=2, seed=0,
)
print(f"mined run {outcome.run_id}: {len(outcome.result)} patterns")
print(f"on disk: {json.dumps(store.run_info(outcome.run_id)['files'])}")
print()

# 2. The production entry point, exactly as deployed: pre-forked workers
#    inherit the listening socket and the supervisor's warm caches.
env = dict(os.environ)
env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src") + (
    os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
)
server = subprocess.Popen(
    [sys.executable, "-m", "repro", "serve", "--store", str(root),
     "--workers", "2", "--queue-depth", "64", "--port", "0"],
    # stderr carries one access-log line per request — don't let it share
    # an undrained pipe or the server will block mid-load-test.
    stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True, env=env,
)
banner = server.stdout.readline()
url = re.search(r"on (http://[\d.]+:\d+)", banner).group(1)
print(banner.strip())
print()


def fleet(clients: int, requests: int) -> list[float]:
    """Per-request latencies from `clients` concurrent threads."""
    samples: list[list[float]] = [[] for _ in range(clients)]

    def client(slot: int) -> None:
        for _ in range(requests):
            start = time.perf_counter()
            with urllib.request.urlopen(
                f"{url}/runs/{outcome.run_id}?limit=10", timeout=30
            ) as response:
                response.read()
            samples[slot].append(time.perf_counter() - start)

    threads = [
        threading.Thread(target=client, args=(s,)) for s in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [sample for per_client in samples for sample in per_client]


# 3. The latency table, via the same summary helper the BENCH suites use.
print(f"{'CLIENTS':>7}  {'N':>5}  {'P50 MS':>8}  {'P90 MS':>8}  {'P99 MS':>8}")
for clients in (1, 4, 16):
    summary = latency_summary(fleet(clients, requests=25))
    print(
        f"{clients:>7}  {summary['n']:>5}  {summary['p50'] * 1e3:>8.2f}  "
        f"{summary['p90'] * 1e3:>8.2f}  {summary['p99'] * 1e3:>8.2f}"
    )
print()

# 4. One scrape shows the whole fleet: each series carries a worker label,
#    the supervisor contributes the restart counter.
time.sleep(0.6)  # let the amortised per-worker snapshots land
with urllib.request.urlopen(url + "/metrics", timeout=10) as response:
    exposition = response.read().decode()
workers = sorted(set(re.findall(r'worker="([^"]+)"', exposition)))
print(f"metric series from workers: {workers}")
for line in exposition.splitlines():
    if line.startswith("repro_prefork_"):
        print(f"  {line}")
print()

server.send_signal(signal.SIGTERM)
out, _ = server.communicate(timeout=30)
print(f"server exit {server.returncode}: {out.strip().splitlines()[-1]}")
