"""Pattern store + serving walkthrough: mine once, query forever.

The story this example tells:

1. mine a colossal pool and persist it with ``Pipeline.store()``;
2. reload it bit-identically and query it with the composable operators;
3. watch ``mine_cached`` skip the mining on a warm hit;
4. serve the store over HTTP and query it like a remote client would.

Run with ``PYTHONPATH=src python examples/store_and_serve.py``.
"""

import json
import tempfile
import urllib.request
from pathlib import Path

from repro import (
    PatternServer,
    PatternStore,
    Pipeline,
    Query,
    mine_cached,
)
from repro.datasets import diag_plus

root = Path(tempfile.mkdtemp(prefix="repro-store-")) / "runs"

# 1. Mine and persist in one pipeline. The store stage records full
#    provenance (miner, config, dataset fingerprint), so this run doubles
#    as a cache entry for any later identical mine.
report = (
    Pipeline()
    .dataset("diag-plus")
    .miner("pattern_fusion", minsup=20, k=10, initial_pool_max_size=2, seed=0)
    .store(root)
    .run()
)
print(report.format(limit=3))
print()

# 2. Reload — bit-identical: same itemsets, same tidsets, same pool order.
store = PatternStore(root)
run = store.load(report.run_id)
assert [(p.items, p.tidset) for p in run.patterns] == [
    (p.items, p.tidset) for p in report.result.patterns
]

# Query it: the colossal slice, the patterns covering items {40, 41}, and
# the ball of near-duplicates around the largest pattern.
largest = run.result.largest(1)[0]
print("colossal slice :", [str(p)[:30] for p in
                           Query().size_at_least(20).evaluate(run.patterns)])
print("superset of 40,41:", len(Query().superset([40, 41]).evaluate(run.patterns)))
print("ball around top :", len(
    Query().within(largest.items, 0.3).evaluate(run.patterns)
))
print()

# 3. The mining cache: same dataset content + same config = no re-mining.
warm = mine_cached(
    store, "pattern_fusion", diag_plus(),
    minsup=20, k=10, initial_pool_max_size=2, seed=0,
)
print(f"mine_cached: hit={warm.hit} run={warm.run_id}")
assert warm.hit and warm.run_id == report.run_id
print()

# 4. Serve it. PatternServer is the object behind `repro serve`; port=0
#    grabs an ephemeral port.
with PatternServer(store, port=0) as server:
    print(f"serving on {server.url}")
    health = json.loads(urllib.request.urlopen(server.url + "/health").read())
    print("health:", health["runs"], "runs")
    request = urllib.request.Request(
        server.url + "/query",
        data=json.dumps({
            "run": report.run_id,
            "query": {"min_size": 20, "top": 2},
        }).encode(),
        headers={"Content-Type": "application/json"},
    )
    payload = json.loads(urllib.request.urlopen(request).read())
    print("HTTP query:", payload["count"], "matches; largest size",
          payload["patterns"][0]["size"])
print("done")
