"""Quickstart: mine a colossal pattern that complete miners cannot reach.

Reproduces the paper's introductory example: a 60 × 39 table (Diag40 plus 20
identical rows of 39 fresh items) has an astronomically large number of
mid-size maximal patterns — C(40, 20) ≈ 1.4 · 10^11 — drowning any complete
miner, yet exactly one *colossal* pattern: the 39 fresh items at support 20.

Run:
    python examples/quickstart.py
"""

from repro import PatternFusionConfig, pattern_fusion
from repro.datasets import diag_plus
from repro.db import describe
from repro.mining import maximal_patterns


def main() -> None:
    db = diag_plus()  # the paper's 60 x 39 example table
    print("dataset:", describe(db))

    # A complete miner is hopeless here.  Give it two seconds to prove it.
    try:
        maximal_patterns(db, minsup=20, max_seconds=2.0)
        print("complete maximal mining finished (unexpected at this scale)")
    except TimeoutError:
        print("complete maximal mining: gave up after 2s "
              "(the paper waited 10 hours for FPClose/LCM2)")

    # Pattern-Fusion leaps straight to the colossal pattern.
    config = PatternFusionConfig(
        k=10,                    # mine at most 10 patterns
        tau=0.5,                 # core ratio (the paper's worked value)
        initial_pool_max_size=2, # phase 1: all frequent 1- and 2-itemsets
        seed=0,                  # deterministic run
    )
    result = pattern_fusion(db, minsup=20, config=config)
    print(
        f"pattern-fusion: {len(result)} patterns from an initial pool of "
        f"{result.initial_pool_size} in {result.iterations} iterations "
        f"({result.elapsed_seconds:.2f}s)"
    )

    colossal = result.largest(1)[0]
    print(f"largest pattern: size {colossal.size}, support {colossal.support}")
    assert colossal.items == frozenset(range(40, 79)), "should be the planted block"
    print("-> exactly the planted 39-item colossal pattern. QED.")


if __name__ == "__main__":
    main()
