"""Quickstart: mine a colossal pattern that complete miners cannot reach.

Reproduces the paper's introductory example through the unified miner API:
a 60 × 39 table (Diag40 plus 20 identical rows of 39 fresh items) has an
astronomically large number of mid-size maximal patterns — C(40, 20) ≈
1.4 · 10^11 — drowning any complete miner, yet exactly one *colossal*
pattern: the 39 fresh items at support 20.

Every algorithm here is a registered ``Miner``: one lifecycle
(``create_miner(name, **knobs).mine(db)``), one registry (``repro miners``
lists them all), and one ``Pipeline`` builder to compose runs declaratively.

Run:
    python examples/quickstart.py
"""

from repro import Pipeline, create_miner, miner_names
from repro.datasets import diag_plus
from repro.db import describe


def main() -> None:
    db = diag_plus()  # the paper's 60 x 39 example table
    print("dataset:", describe(db))
    print("registered miners:", ", ".join(miner_names()))

    # A complete miner is hopeless here.  Give it two seconds to prove it.
    baseline = create_miner("maximal", minsup=20, max_seconds=2.0)
    try:
        baseline.mine(db)
        print("complete maximal mining finished (unexpected at this scale)")
    except TimeoutError:
        print("complete maximal mining: gave up after 2s "
              "(the paper waited 10 hours for FPClose/LCM2)")

    # Pattern-Fusion leaps straight to the colossal pattern — same lifecycle,
    # different name and knobs.
    fusion = create_miner(
        "pattern_fusion",
        minsup=20,
        k=10,                    # mine at most 10 patterns
        tau=0.5,                 # core ratio (the paper's worked value)
        initial_pool_max_size=2, # phase 1: all frequent 1- and 2-itemsets
        seed=0,                  # deterministic run
    )
    result = fusion.mine(db)
    print(
        f"pattern-fusion: {len(result)} patterns in "
        f"{result.elapsed_seconds:.2f}s"
    )

    colossal = max(result.patterns, key=lambda p: p.size)
    print(f"largest pattern: size {colossal.size}, support {colossal.support}")
    assert colossal.items == frozenset(range(40, 79)), "should be the planted block"
    print("-> exactly the planted 39-item colossal pattern. QED.")

    # The same run as a declarative pipeline: dataset -> miner -> report.
    report = (
        Pipeline()
        .dataset("diag-plus")
        .miner("pattern_fusion", minsup=20, k=10,
               initial_pool_max_size=2, seed=0)
        .run()
    )
    print()
    print(report.format(limit=3))


if __name__ == "__main__":
    main()
