"""The Section 5 quality-evaluation model, worked end to end.

Walks through the paper's own Example 1 (Figure 5) — two mined patterns
covering a seven-pattern complete set with Δ(AP_Q) = 11/30 — then runs the
model at scale on Diag40, comparing three K-pattern answers: Pattern-Fusion,
uniform sampling from the complete set, and the greedy K-center offline
ideal the model is defined against.

Run:
    python examples/evaluation_model.py
"""

import random

from repro import PatternFusionConfig, pattern_fusion
from repro.datasets import diag, sample_complete_maximal
from repro.evaluation import (
    approximate,
    approximation_error,
    edit_distance,
    greedy_k_center,
    uniform_sample,
)
from repro.mining.results import Pattern


def worked_example() -> None:
    """Figure 5 / Example 1, verbatim."""
    a, b, c, d, e, f, x, y, z = range(9)

    def pat(items):
        return Pattern(items=frozenset(items), tidset=0)

    mined = [pat([a, b, c, d, e]), pat([x, y, z])]          # P1, P2
    complete = [
        pat([a, b, c, d, f]),   # Q1 — farthest from P1: edit 2
        pat([a, c, d, e]),      # Q2
        pat([a, b, c, d]),      # Q3
        pat([a, b, c, d, e]),   # Q4 = P1
        pat([x, y]),            # Q5
        pat([x, y, z]),         # Q6 = P2
        pat([y, z]),            # Q7
    ]
    print("Example 1 (Figure 5):")
    print(f"  Edit(abcd, acde) = {edit_distance({a,b,c,d}, {a,c,d,e})} (paper: 2)")
    approximation = approximate(mined, complete)
    for cluster in approximation.clusters:
        print(f"  cluster around size-{cluster.center.size} center: "
              f"{len(cluster.members)} members, r_i = {cluster.max_error:.4f}")
    print(f"  delta(AP_Q) = {approximation.error:.4f} (paper: 11/30 = 0.3667)")


def at_scale() -> None:
    """Three K-pattern answers for Diag40 under the same yardstick."""
    n, minsup, k = 40, 20, 150
    rng = random.Random(0)
    db = diag(n)
    reference = sample_complete_maximal(n, minsup, 400, rng)

    fused = pattern_fusion(
        db, minsup,
        PatternFusionConfig(k=k, initial_pool_max_size=2, seed=0),
    ).patterns
    sampled = sample_complete_maximal(n, minsup, k, rng)
    centers = greedy_k_center(reference, k, rng)

    print(f"\nDiag{n} at minsup {minsup}, K = {k}, |Q| = {len(reference)}:")
    for name, answer in (
        ("pattern-fusion (never sees the complete set)", fused),
        ("uniform sampling (oracle access to it)", sampled),
        ("greedy K-center (offline ideal, full access)", centers),
    ):
        print(f"  {name:48s} delta = "
              f"{approximation_error(answer, reference):.4f}")


def main() -> None:
    worked_example()
    at_scale()


if __name__ == "__main__":
    main()
