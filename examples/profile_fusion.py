"""Continuous profiling, worked end to end: from fusion run to flamegraph.

The story this example tells:

1. run Pattern-Fusion at Replace-sim scale with tracing enabled and the
   sampling profiler running alongside, so every wall-clock sample is
   attributed to the engine phase (span) that owned the thread;
2. print the per-phase sample table — where the fused rounds actually
   spend their time — and the top self-time frames;
3. write the collapsed-stack output to ``fusion.collapsed``, the exact
   format ``flamegraph.pl`` and speedscope ingest
   (https://www.speedscope.app → "Import" → paste the file);
4. do the same thing against a *live server* instead: launch
   ``repro serve --workers 2`` as a subprocess and capture a merged
   fleet-wide profile with one ``POST /debug/profile`` call.

Run with ``PYTHONPATH=src python examples/profile_fusion.py``.
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro import PatternFusionConfig, pattern_fusion
from repro.datasets import diag_plus, replace_like
from repro.obs import profile, trace
from repro.store import PatternStore, mine_cached

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def profile_a_fusion_run() -> None:
    print("=== 1. profiling a fusion run in-process ===")
    db, _truth = replace_like(n_transactions=2000, seed=5)
    config = PatternFusionConfig(k=10, initial_pool_max_size=2, seed=7)

    # Tracing gives the profiler its phase labels: each sample of a thread
    # inside `with span("fuse_round")` lands in the "fuse_round" bucket.
    trace.configure(enabled=True, sinks=[trace.RingBufferSink()])
    with profile.profiling(hz=199) as profiler:
        for _ in range(5):  # ~0.5s of work so the sampler sees every phase
            result = pattern_fusion(db, 0.03, config)
    trace.configure(enabled=False, sinks=[])
    prof = profiler.result

    print(f"mined {len(result.patterns)} patterns; "
          f"{prof.n_samples} samples over {prof.duration:.2f}s\n")
    print("--- where the time went, by engine phase ---")
    print(prof.phase_table())
    print("\n--- top self-time frames ---")
    print(prof.table(limit=8))

    out = Path(tempfile.gettempdir()) / "fusion.collapsed"
    out.write_text(prof.collapsed())
    print(f"\ncollapsed stacks -> {out}")
    print("render: flamegraph.pl fusion.collapsed > fusion.svg")
    print("   or paste into https://www.speedscope.app\n")


def profile_a_live_fleet() -> None:
    print("=== 2. profiling a live 2-worker server via POST /debug/profile ===")
    with tempfile.TemporaryDirectory() as root:
        store = PatternStore(Path(root) / "store")
        mine_cached(store, "pattern_fusion", diag_plus(),
                    minsup=20, k=10, initial_pool_max_size=2, seed=0)

        env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
        # --trace-file enables tracing in the workers, which is what lets
        # the profiler attribute request samples to the http_request phase
        # (each worker writes spans to spans.worker<N>.jsonl).
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro",
             "--trace-file", str(Path(root) / "spans.jsonl"),
             "serve", "--store",
             str(store.root), "--workers", "2", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            url = re.search(r"on (http://[\d.]+:\d+)", banner).group(1)
            print(f"server up at {url}")

            stop = threading.Event()

            def churn():  # give the profiler request traffic to see
                while not stop.is_set():
                    urllib.request.urlopen(url + "/runs", timeout=10).read()

            load = threading.Thread(target=churn, daemon=True)
            load.start()
            request = urllib.request.Request(
                url + "/debug/profile?seconds=1.5&hz=199", method="POST")
            with urllib.request.urlopen(request, timeout=30) as response:
                doc = json.load(response)
            stop.set()
            load.join(timeout=10)

            print(f"merged profile from workers {doc['workers']}: "
                  f"{doc['n_samples']} samples")
            print("phases:", doc["phases"])
            serve_lines = [line for line in doc["collapsed"].splitlines()
                           if "prefork" in line or "app." in line][:3]
            print("sample serve frames:")
            for line in serve_lines:
                print("  " + line)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                proc.communicate(timeout=30)
    print("\nthe same merge powers `GET /debug/vars` (per-worker vitals)")
    print("and `GET /debug/trace` (recent spans from the ring buffer)")


if __name__ == "__main__":
    profile_a_fusion_run()
    profile_a_live_fleet()
