"""Program-trace analysis: find the normal execution structures of `replace`.

The paper's Replace experiment motivates colossal patterns with software
engineering: each transaction is the set of program calls/transitions of one
correct execution, and the *largest* frequent patterns are the program's
normal execution structures — the baselines an anomalous (buggy) trace is
compared against.

This example:
1. generates the Replace-sim dataset (4,395 traces, 57 call/transition items);
2. mines the three colossal size-44 execution structures with Pattern-Fusion;
3. scores the mined set against the complete closed answer (Δ(AP_Q));
4. plays the bug-isolation game: given a corrupted trace, reports which
   expected calls are missing relative to its nearest execution structure.

Run:
    python examples/replace_bug_isolation.py
"""

import random

from repro import PatternFusionConfig, pattern_fusion
from repro.datasets import replace_like
from repro.db import describe
from repro.evaluation import approximate, pattern_edit_distance, summarize_approximation
from repro.mining import closed_patterns
from repro.mining.results import make_pattern


def main() -> None:
    db, truth = replace_like()
    print("dataset:", describe(db))
    print(f"minimum support: {truth.minsup_absolute} (sigma = 0.03)")

    # --- mine the colossal execution structures ----------------------------
    config = PatternFusionConfig(k=100, initial_pool_max_size=2, seed=0)
    result = pattern_fusion(db, truth.minsup_absolute, config)
    colossal = [p for p in result.patterns if p.size >= 40]
    print(f"pattern-fusion found {len(result)} patterns, "
          f"{len(colossal)} of size >= 40, in {result.elapsed_seconds:.1f}s")
    largest = result.largest(3)
    for p in largest:
        print(f"  execution structure: size {p.size}, support {p.support}")
    planted = set(truth.colossal)
    recovered = sum(1 for p in largest if p.items in planted)
    print(f"recovered {recovered}/3 planted size-44 structures")

    # --- quality against the complete closed answer ------------------------
    complete = closed_patterns(db, truth.minsup_absolute)
    reference = complete.of_size_at_least(39)
    print(f"complete closed set: {len(complete)} patterns "
          f"({len(reference)} of size >= 39)")
    print(summarize_approximation(approximate(result.patterns, reference)))

    # --- bug isolation: diff an anomalous trace against the structures -----
    rng = random.Random(1)
    normal = max(truth.colossal, key=len)
    dropped = set(rng.sample(sorted(normal), 3))
    buggy_trace = make_pattern(db, normal - dropped)
    nearest = min(largest, key=lambda p: pattern_edit_distance(p, buggy_trace))
    missing = sorted(nearest.items - buggy_trace.items)
    print(f"\nanomalous trace of {buggy_trace.size} calls diffed against its "
          f"nearest normal structure (size {nearest.size}):")
    print(f"  missing calls/transitions: {missing}")
    assert set(missing) == dropped
    print("-> exactly the calls the simulated bug skipped")


if __name__ == "__main__":
    main()
