"""Sequential extension: mining a colossal motif from noisy event streams.

Section 8 of the paper positions Pattern-Fusion as "an initial effort toward
mining colossal frequent patterns in more complicated data, such as
sequences".  This example exercises that extension: 200 event streams, 60%
of which embed a 30-event motif with noise interleaved; the complete
sequential miner (PrefixSpan) faces an explosive pattern count, while the
sequential Pattern-Fusion leaps to the motif through support-set balls and
common-subsequence fusion.

Run:
    python examples/sequence_motifs.py
"""

from repro.core import PatternFusionConfig
from repro.sequences import motif_sequences, prefixspan, sequence_pattern_fusion


def main() -> None:
    db, motifs = motif_sequences(
        n_sequences=200, motif_lengths=(30,), motif_support=0.6, seed=0
    )
    motif = motifs[0]
    minsup = 50
    print(f"{db}; planted motif of {len(motif)} events, "
          f"support {db.support(motif)}")

    # The complete miner's answer set explodes: every subsequence of the
    # motif is frequent — 2^30 patterns down there.  Cap it to show the rate.
    capped = prefixspan(db, minsup, max_patterns=30_000)
    print(f"prefixspan emitted {len(capped)} patterns before hitting its cap "
          f"({capped.elapsed_seconds:.1f}s) — the complete set has ~2^30")

    # Sequential Pattern-Fusion: same config surface as the itemset version.
    config = PatternFusionConfig(
        k=10, tau=0.5, initial_pool_max_size=2, seed=0
    )
    result = sequence_pattern_fusion(db, minsup, config)
    top = result.largest(1)[0]
    print(f"pattern-fusion: initial pool {result.initial_pool_size}, "
          f"{result.iterations} iterations, {result.elapsed_seconds:.1f}s")
    print(f"largest mined pattern: {top.length} events, support {top.support}")
    assert top.sequence == motif
    print("-> exactly the planted motif")


if __name__ == "__main__":
    main()
