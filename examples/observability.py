"""Telemetry walkthrough: metrics, spans, and the /metrics scrape endpoint.

The story this example tells:

1. mine with span tracing on and read the span tree a run produces —
   including the ``fuse_ball`` spans shipped back from engine workers;
2. inspect the metrics the run incremented, then render them exactly as a
   Prometheus scrape would see them;
3. serve a store and scrape ``GET /metrics`` over HTTP like a collector
   would, with request counters/latency histograms accumulating live;
4. switch structured logging to JSON mode and watch the server's access
   log records come out machine-parseable.

Run with ``PYTHONPATH=src python examples/observability.py``.
"""

import io
import json
import tempfile
import urllib.request
from pathlib import Path

from repro import PatternServer, PatternStore, mine_cached
from repro.core import PatternFusionConfig
from repro.datasets import diag_plus
from repro.engine import parallel_pattern_fusion
from repro.obs import logs, metrics, trace

# 1. Trace a parallel run. Workers capture their spans and return them with
#    their results; the driver stitches them into one tree, so jobs=2 looks
#    exactly like a serial trace.
sink = trace.RingBufferSink()
trace.configure(enabled=True, sinks=[sink])
config = PatternFusionConfig(k=10, initial_pool_max_size=2, seed=0)
result = parallel_pattern_fusion(diag_plus(), 20, config, jobs=2)
trace.configure(enabled=False, sinks=[])

spans = sink.spans()
by_id = {s["span_id"]: s for s in spans}
print(f"mined {len(result.patterns)} patterns; {len(spans)} spans recorded")
for record in spans:
    if record["name"] in ("pattern_fusion", "fusion_round"):
        attrs = " ".join(f"{k}={v}" for k, v in sorted(record["attrs"].items()))
        print(f"  {record['name']:<16} {record['elapsed'] * 1000:8.2f}ms  {attrs}")
fuse = [s for s in spans if s["name"] == "fuse_ball"]
rounds = {by_id[s["parent_id"]]["attrs"]["iteration"] for s in fuse}
print(f"  {len(fuse)} fuse_ball spans, parented under rounds {sorted(rounds)}")
print()

# 2. The same run incremented the always-on counters. Render the registry
#    the way GET /metrics serves it (Prometheus text exposition format).
print("fusion counters after the run:")
for name in ("repro_fusion_rounds_total", "repro_fusion_fused_patterns_total"):
    print(f"  {name} = {metrics.REGISTRY.get(name).value()}")
sample = [
    line for line in metrics.render().splitlines()
    if line.startswith("repro_fusion_") and "_total" in line
]
print("as a scrape would see it:")
print("  " + "\n  ".join(sample[:4]))
print()

# 3. Serve a store and scrape /metrics over HTTP. Request counters and
#    per-route latency histograms accumulate as requests arrive.
root = Path(tempfile.mkdtemp(prefix="repro-obs-")) / "runs"
store = PatternStore(root)
mine_cached(store, "pattern_fusion", diag_plus(),
            minsup=20, k=10, initial_pool_max_size=2, seed=0)
with PatternServer(store, port=0) as server:
    urllib.request.urlopen(server.url + "/health").read()
    urllib.request.urlopen(server.url + "/runs").read()
    with urllib.request.urlopen(server.url + "/metrics") as response:
        content_type = response.headers["Content-Type"]
        scrape = response.read().decode()
print(f"GET /metrics -> {content_type}")
print("  " + "\n  ".join(
    line for line in scrape.splitlines()
    if line.startswith("repro_http_requests_total")
))
print()

# 4. Structured logging: one JSON object per record, extras preserved —
#    the serving layer's access log uses exactly this.
stream = io.StringIO()
logs.setup_logging("info", json_mode=True, stream=stream)
logs.get_logger("serve.access").info(
    "GET /runs -> 200",
    extra={"route": "/runs", "status": 200, "duration_ms": 1.42},
)
record = json.loads(stream.getvalue())
logs.setup_logging("warning")  # back to a quiet default
print("one access-log record, JSON mode:")
print("  " + json.dumps(record, sort_keys=True))
